// Package ftp models the paper's LightFTP case study (§5): a multi-threaded
// FTP server operating on an in-memory filesystem, driven by concurrent
// scripted clients. As in the study, each client authenticates, issues a
// randomly shuffled sequence of utility, MKD and RMD commands against a
// shared directory, fetches a listing over a spawned data-transfer thread
// (PASV-LIST), and disconnects. The interleavings of interest are the
// temporal orderings of filesystem accesses; the behaviour is the final
// file structure.
//
// The command shuffle is drawn from the program-input stream (ProgSeed), so
// it is fixed across the schedules of one trial — the paper's fixed-input
// methodology — while varying across trials.
package ftp

import (
	"fmt"
	"math/rand"
	"strings"

	"surw/internal/memfs"
	"surw/internal/profile"
	"surw/internal/runner"
	"surw/internal/sched"
)

// Command kinds of the client scripts.
type cmdKind uint8

const (
	cmdNoop cmdKind = iota // NOOP/SYST/PWD-style utility: reads server state
	cmdMkd                 // MKD <dir>
	cmdRmd                 // RMD <dir>
	cmdStor                // STOR <file>: upload
	cmdRetr                // RETR <file>: download
	cmdDele                // DELE <file>: delete
)

type command struct {
	kind cmdKind
	path string
}

// Config shapes the workload.
type Config struct {
	// Clients is the number of concurrent clients (paper: 4).
	Clients int
	// Util is the number of utility commands per client (paper: 3).
	Util int
	// Dirs is the number of MKD (and RMD) commands per client (paper: 3).
	Dirs int
	// Shuffle randomizes each client's command order per trial (paper: on).
	Shuffle bool
	// Noise is the number of session-local socket/parse events preceding
	// each command, modeling per-command non-filesystem work (default 4;
	// 0 means default, -1 means none).
	Noise int
	// Files is the number of STOR (plus one RETR and one DELE of the
	// neighbour's files) commands per client. The paper's workload uses
	// none; a positive value enriches the behaviour space with file
	// lifetimes.
	Files int
	// Startup is the number of single-threaded server initialization
	// events (config parsing, socket setup) preceding the serving phase.
	// They inflate the instrumented trace length exactly as the real
	// server's startup does — which is what starves PCT's change points —
	// without offering any scheduling choice (default 1500; 0 means
	// default, -1 means none).
	Startup int
}

// DefaultConfig is the paper's case-study setup.
func DefaultConfig() Config {
	return Config{Clients: 4, Util: 3, Dirs: 3, Shuffle: true}
}

func (c Config) normalized() Config {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Util < 0 {
		c.Util = 0
	}
	if c.Dirs < 0 {
		c.Dirs = 0
	}
	if c.Noise == 0 {
		c.Noise = 4
	}
	if c.Noise < 0 {
		c.Noise = 0
	}
	if c.Startup == 0 {
		c.Startup = 1500
	}
	if c.Startup < 0 {
		c.Startup = 0
	}
	return c
}

// DirName returns the k-th directory owned by a client.
func DirName(client, k int) string { return fmt.Sprintf("/c%dd%d", client, k) }

// FileName returns the k-th file owned by a client.
func FileName(client, k int) string { return fmt.Sprintf("/c%df%d", client, k) }

// script builds one client's command sequence: util + MKD(own) + RMD(next
// client's), shuffled when configured.
func (c Config) script(client int, rng *rand.Rand) []command {
	var cmds []command
	for k := 0; k < c.Util; k++ {
		cmds = append(cmds, command{kind: cmdNoop})
	}
	for k := 0; k < c.Dirs; k++ {
		cmds = append(cmds, command{kind: cmdMkd, path: DirName(client, k)})
	}
	victim := (client + 1) % c.Clients
	for k := 0; k < c.Dirs; k++ {
		cmds = append(cmds, command{kind: cmdRmd, path: DirName(victim, k)})
	}
	for k := 0; k < c.Files; k++ {
		cmds = append(cmds,
			command{kind: cmdStor, path: FileName(client, k)},
			command{kind: cmdRetr, path: FileName(victim, k)},
			command{kind: cmdDele, path: FileName(victim, k)})
	}
	if c.Shuffle && rng != nil {
		rng.Shuffle(len(cmds), func(i, j int) { cmds[i], cmds[j] = cmds[j], cmds[i] })
	}
	return cmds
}

// Prog returns the server+clients program for one schedule.
func (c Config) Prog() func(*sched.Thread) {
	cfg := c.normalized()
	return func(t *sched.Thread) {
		// Scripts are drawn in the root thread, before any scheduling
		// choice can interleave the draws, so they depend only on ProgSeed.
		scripts := make([][]command, cfg.Clients)
		for i := range scripts {
			scripts[i] = cfg.script(i, t.ProgRand())
		}
		fs := sched.NewRef[*memfs.FS](t, "fs", memfs.New())
		sessions := t.NewVar("sessions", 0)
		boot := t.NewVar("boot", 0)
		for k := 0; k < cfg.Startup; k++ {
			boot.Add(t, 1) // single-threaded server initialization
		}
		handles := make([]*sched.Handle, cfg.Clients)
		for i := range handles {
			script := scripts[i]
			sockBuf := t.NewVar(fmt.Sprintf("sock%d", i), 0)
			// recvParse models the per-command socket read and parse work
			// of the real server: events on session-local state only.
			recvParse := func(w *sched.Thread) {
				for k := 0; k < cfg.Noise; k++ {
					sockBuf.Add(w, 1)
				}
			}
			handles[i] = t.Go(func(w *sched.Thread) {
				sessions.Add(w, 1) // USER/PASS accepted
				for _, cmd := range script {
					recvParse(w)
					switch cmd.kind {
					case cmdNoop:
						fs.Get(w) // status reply reads server state
					case cmdMkd:
						// LightFTP resolves and checks the path before
						// creating: a read followed by a write, racing with
						// other sessions in between.
						if f := fs.Get(w); !f.Exists(cmd.path) {
							fs.Update(w, func(f *memfs.FS) *memfs.FS {
								_ = f.Mkdir(cmd.path) // lost race => 550 reply
								return f
							})
						}
					case cmdRmd:
						if f := fs.Get(w); f.Exists(cmd.path) {
							fs.Update(w, func(f *memfs.FS) *memfs.FS {
								_ = f.Rmdir(cmd.path)
								return f
							})
						}
					case cmdStor:
						fs.Update(w, func(f *memfs.FS) *memfs.FS {
							_ = f.WriteFile(cmd.path, []byte(cmd.path))
							return f
						})
					case cmdRetr:
						if f := fs.Get(w); f.Exists(cmd.path) {
							f2 := fs.Get(w) // data connection re-reads
							_, _ = f2.ReadFile(cmd.path)
						}
					case cmdDele:
						if f := fs.Get(w); f.Exists(cmd.path) {
							fs.Update(w, func(f *memfs.FS) *memfs.FS {
								_ = f.Delete(cmd.path)
								return f
							})
						}
					}
				}
				// PASV-LIST: LightFTP serves the data connection on a
				// spawned worker thread. The behaviour of the run is the
				// listing returned by whichever LIST executes last (§5) —
				// SetBehavior's last-write-wins matches exactly, since the
				// Get below is the worker's single serialized event.
				data := w.Go(func(d *sched.Thread) {
					f := fs.Get(d)
					names, _ := f.List("/")
					d.SetBehavior(strings.Join(names, ","))
				})
				w.Join(data)
				sessions.Add(w, -1) // QUIT
			})
		}
		t.JoinAll(handles...)
		t.Assert(sessions.Load(t) == 0, "ftp-session-leak")
	}
}

// Target builds the runner target for the case study. progSeed selects the
// trial's fixed client scripts. The interleaving fingerprint records the
// filesystem accesses of the first two clients only, as in the paper
// (footnote 5: the full 4-client space is too large to ever resample).
func (c Config) Target(progSeed int64) runner.Target {
	return runner.Target{
		Name:        "LightFTP",
		Prog:        c.Prog(),
		ProgSeed:    progSeed,
		TraceFilter: TraceFilterFS(2),
		Select: func(p *profile.Profile, rng *rand.Rand) (profile.Selection, bool) {
			return FSSelection(), true
		},
	}
}

// FSSelection is the expert Δ of §3.6: the filesystem accesses that modify
// server state. The behaviour of an FTP server is its file system, and the
// file system is a function of the order of its mutations, so their
// interleavings partition almost bijectively into behaviours — exactly the
// "evenly distributed" property §2.2 asks of Δ.
func FSSelection() profile.Selection {
	fsHash := sched.HashName("fs")
	return profile.SelectCustom("filesystem mutations", func(ev sched.Event) bool {
		return ev.ObjHash == fsHash && ev.Kind.IsWrite()
	})
}

// TraceFilterFS keeps only the mutating filesystem events of the first n
// clients' session threads (and their data-transfer workers) — the
// case-study's recorded interleaving.
func TraceFilterFS(n int) func(sched.Event) bool {
	fsHash := sched.HashName("fs")
	paths := make(map[uint64]bool, 2*n)
	for i := 0; i < n; i++ {
		paths[sched.HashName(fmt.Sprintf("0.%d", i))] = true
		paths[sched.HashName(fmt.Sprintf("0.%d.0", i))] = true
	}
	return func(ev sched.Event) bool {
		return ev.ObjHash == fsHash && ev.Kind.IsWrite() && paths[ev.PathHash]
	}
}
