package ftp

import (
	"math/rand"
	"strings"
	"testing"

	"surw/internal/core"
	"surw/internal/runner"
	"surw/internal/sched"
)

func TestScriptComposition(t *testing.T) {
	cfg := DefaultConfig()
	s := cfg.script(1, nil)
	if len(s) != 9 {
		t.Fatalf("script length = %d, want 9", len(s))
	}
	util, mkd, rmd := 0, 0, 0
	for _, c := range s {
		switch c.kind {
		case cmdNoop:
			util++
		case cmdMkd:
			mkd++
			if !strings.HasPrefix(c.path, "/c1d") {
				t.Fatalf("client 1 MKD of %q", c.path)
			}
		case cmdRmd:
			rmd++
			if !strings.HasPrefix(c.path, "/c2d") {
				t.Fatalf("client 1 RMD of %q (victim must be client 2)", c.path)
			}
		}
	}
	if util != 3 || mkd != 3 || rmd != 3 {
		t.Fatalf("composition %d/%d/%d", util, mkd, rmd)
	}
}

func TestScriptShuffleDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := cfg.script(0, rand.New(rand.NewSource(7)))
	b := cfg.script(0, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different scripts")
		}
	}
	c := cfg.script(0, rand.New(rand.NewSource(8)))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical scripts (improbable)")
	}
}

func TestWorkloadRunsClean(t *testing.T) {
	tgt := DefaultConfig().Target(3)
	for seed := int64(0); seed < 50; seed++ {
		res := sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed, ProgSeed: tgt.ProgSeed}, TraceFilter: tgt.TraceFilter})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v truncated=%v", seed, res.Failure, res.Truncated)
		}
		if res.Behavior == "" {
			t.Fatal("no behaviour reported")
		}
		if res.Threads != 1+4+4 {
			t.Fatalf("threads = %d, want 9 (root + 4 sessions + 4 data)", res.Threads)
		}
	}
}

func TestBehaviorsVaryAcrossSchedules(t *testing.T) {
	tgt := DefaultConfig().Target(3)
	seen := map[string]bool{}
	for seed := int64(0); seed < 300; seed++ {
		res := sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed, ProgSeed: tgt.ProgSeed}})
		seen[res.Behavior] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct final trees in 300 schedules", len(seen))
	}
}

func TestBehaviorFixedInputFixedSchedule(t *testing.T) {
	tgt := DefaultConfig().Target(9)
	a := sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 4, ProgSeed: 9}})
	b := sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 4, ProgSeed: 9}})
	if a.Behavior != b.Behavior || a.InterleavingHash != b.InterleavingHash {
		t.Fatal("replay diverged")
	}
}

func TestTraceFilterScopesClients(t *testing.T) {
	f := TraceFilterFS(2)
	fsHash := sched.HashName("fs")
	if !f(sched.Event{Kind: sched.OpRMW, ObjHash: fsHash, PathHash: sched.HashName("0.0")}) {
		t.Fatal("client 0 session fs mutation excluded")
	}
	if !f(sched.Event{Kind: sched.OpWrite, ObjHash: fsHash, PathHash: sched.HashName("0.1.0")}) {
		t.Fatal("client 1 data worker excluded")
	}
	if f(sched.Event{Kind: sched.OpRMW, ObjHash: fsHash, PathHash: sched.HashName("0.2")}) {
		t.Fatal("client 2 included")
	}
	if f(sched.Event{Kind: sched.OpRead, ObjHash: fsHash, PathHash: sched.HashName("0.0")}) {
		t.Fatal("fs read included; the recorded interleaving is mutations only")
	}
	if f(sched.Event{Kind: sched.OpRMW, ObjHash: sched.HashName("sessions"), PathHash: sched.HashName("0.0")}) {
		t.Fatal("non-fs event included")
	}
}

func TestSURWBeatsPCTOnExploration(t *testing.T) {
	// The case study's headline (Table 3 / Figure 5): SURW explores both
	// interleavings and behaviours more than PCT-3. A scaled-down check.
	tgt := DefaultConfig().Target(5)
	cfg := runner.Config{Sessions: 2, Limit: 600, Seed: 21, Coverage: true, CoverageEvery: 200}
	surw, err := runner.RunTarget(tgt, "SURW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	pct, err := runner.RunTarget(tgt, "PCT-3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sIlv, sBeh := surw.EntropySummary()
	pIlv, pBeh := pct.EntropySummary()
	if sIlv.Mean <= pIlv.Mean {
		t.Fatalf("interleaving entropy: SURW %.2f <= PCT-3 %.2f", sIlv.Mean, pIlv.Mean)
	}
	if sBeh.Mean <= pBeh.Mean {
		t.Fatalf("behaviour entropy: SURW %.2f <= PCT-3 %.2f", sBeh.Mean, pBeh.Mean)
	}
	sCov := surw.MeanCoverageSeries()
	pCov := pct.MeanCoverageSeries()
	if sCov[len(sCov)-1].IlvMean <= pCov[len(pCov)-1].IlvMean {
		t.Fatalf("interleaving coverage: SURW %.0f <= PCT-3 %.0f",
			sCov[len(sCov)-1].IlvMean, pCov[len(pCov)-1].IlvMean)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{Clients: 0, Util: -1, Dirs: -2}.normalized()
	if c.Clients != 4 || c.Util != 0 || c.Dirs != 0 {
		t.Fatalf("normalized = %+v", c)
	}
	tgt := Config{Clients: 2, Util: 1, Dirs: 1}.Target(1)
	res := sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 1, ProgSeed: 1}})
	if res.Buggy() {
		t.Fatalf("small config failed: %v", res.Failure)
	}
}

func TestDirName(t *testing.T) {
	if DirName(2, 1) != "/c2d1" {
		t.Fatalf("DirName = %q", DirName(2, 1))
	}
}

func TestFileCommandsWorkload(t *testing.T) {
	cfg := Config{Clients: 3, Util: 1, Dirs: 1, Files: 2, Shuffle: true, Noise: -1, Startup: -1}
	s := cfg.normalized().script(0, rand.New(rand.NewSource(3)))
	stor, retr, dele := 0, 0, 0
	for _, c := range s {
		switch c.kind {
		case cmdStor:
			stor++
			if !strings.HasPrefix(c.path, "/c0f") {
				t.Fatalf("client 0 STOR of %q", c.path)
			}
		case cmdRetr:
			retr++
		case cmdDele:
			dele++
			if !strings.HasPrefix(c.path, "/c1f") {
				t.Fatalf("client 0 DELE of %q (victim must be client 1)", c.path)
			}
		}
	}
	if stor != 2 || retr != 2 || dele != 2 {
		t.Fatalf("file commands %d/%d/%d, want 2/2/2", stor, retr, dele)
	}
	tgt := cfg.Target(3)
	behaviors := map[string]bool{}
	for seed := int64(0); seed < 100; seed++ {
		res := sched.Run(tgt.Prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed, ProgSeed: 3}})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v truncated=%v", seed, res.Failure, res.Truncated)
		}
		behaviors[res.Behavior] = true
	}
	if len(behaviors) < 3 {
		t.Fatalf("file workload produced only %d behaviours", len(behaviors))
	}
}
