package experiments

import (
	"fmt"
	"strings"

	"surw/internal/ftp"
	"surw/internal/report"
	"surw/internal/runner"
	"surw/internal/stats"
	"surw/internal/workpool"
)

// FTPAlgorithms is the case study's algorithm set (POS is excluded, as in
// the paper, because the interesting events are not raw memory races).
var FTPAlgorithms = []string{"SURW", "PCT-3", "PCT-10", "RW"}

// FTPResult holds the raw data behind Table 3 and Figure 5.
type FTPResult struct {
	Scale Scale
	// Trials[alg] holds one runner.Result per trial (fresh command shuffle
	// per trial, one session each).
	Trials map[string][]*runner.Result
}

// LightFTP runs the case study: per trial a fresh shuffled client script
// set, 10^4 schedules in the paper; interleaving and behaviour coverage and
// their Shannon entropies are recorded per trial.
// The (trial × algorithm) grid fans over sc.Workers workers. Each cell
// rebuilds its trial's target from the same derived seed (cfg.Target is a
// deterministic function of its seed), so no two cells share mutable state
// and the trial-ordered collection is identical at any worker count.
func LightFTP(sc Scale, progress Progress) *FTPResult {
	progress = syncProgress(progress)
	out := &FTPResult{Scale: sc, Trials: make(map[string][]*runner.Result)}
	cfg := ftp.DefaultConfig()
	type cell struct {
		trial, ai int
	}
	cells := make([]cell, 0, sc.FTPTrials*len(FTPAlgorithms))
	for trial := 0; trial < sc.FTPTrials; trial++ {
		for ai := range FTPAlgorithms {
			cells = append(cells, cell{trial, ai})
		}
	}
	results, err := workpool.Map(sc.Workers, len(cells), func(i int) (*runner.Result, error) {
		trial, alg := cells[i].trial, FTPAlgorithms[cells[i].ai]
		tgt := cfg.Target(sc.Seed + int64(trial)*97)
		res, err := runner.RunTarget(tgt, alg, runner.Config{
			Sessions:      1,
			Limit:         sc.FTPLimit,
			Seed:          sc.Seed + int64(trial)*13_001,
			Coverage:      true,
			CoverageEvery: maxInt(sc.FTPLimit/25, 1),
			Workers:       sc.Workers,
			Metrics:       sc.Metrics,
			Store:         sc.Store,
		})
		if err != nil {
			return nil, err
		}
		cov := res.Sessions[0].Cov
		progress("trial %d %-6s distinct ilv=%d beh=%d", trial, alg,
			len(cov.Interleavings), len(cov.Behaviors))
		return res, nil
	})
	if err != nil {
		panic(err)
	}
	for i, c := range cells {
		// cells are trial-major, so appends land in trial order per alg.
		out.Trials[FTPAlgorithms[c.ai]] = append(out.Trials[FTPAlgorithms[c.ai]], results[i])
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// entropies returns the per-trial interleaving and behaviour entropies.
func (r *FTPResult) entropies(alg string) (ilv, beh []float64) {
	for _, res := range r.Trials[alg] {
		cov := res.Sessions[0].Cov
		ilv = append(ilv, cov.InterleavingEntropy())
		beh = append(beh, cov.BehaviorEntropy())
	}
	return
}

// Table3 renders the Shannon entropy summary (paper Table 3).
func (r *FTPResult) Table3() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Table 3: Shannon entropy on LightFTP (%d trials x %d schedules)",
			r.Scale.FTPTrials, r.Scale.FTPLimit),
		append([]string{"Entropy"}, FTPAlgorithms...)...)
	ilvRow := []string{"Interleavings"}
	behRow := []string{"Behaviors"}
	for _, alg := range FTPAlgorithms {
		ilv, beh := r.entropies(alg)
		si, sb := stats.Summarize(ilv), stats.Summarize(beh)
		ilvRow = append(ilvRow, fmt.Sprintf("%.2f ± %.2f", si.Mean, si.Std))
		behRow = append(behRow, fmt.Sprintf("%.2f ± %.2f", sb.Mean, sb.Std))
	}
	tb.AddRow(ilvRow...)
	tb.AddRow(behRow...)
	tb.AddFooter("larger entropy = more even sampling; interleavings are the fs mutations of two clients")
	if r.Scale.Metrics != nil {
		tb.AddFooter(r.Scale.Metrics.Summary())
	}
	return tb
}

// covCurve aggregates the coverage series across trials: mean distinct
// interleavings and behaviours at each recorded schedule count.
func (r *FTPResult) covCurve(alg string) (x, ilv, beh []float64) {
	trials := r.Trials[alg]
	if len(trials) == 0 {
		return
	}
	n := len(trials[0].Sessions[0].Cov.Series)
	for i := 0; i < n; i++ {
		var xi float64
		var is, bs []float64
		for _, res := range trials {
			series := res.Sessions[0].Cov.Series
			if i >= len(series) {
				continue
			}
			xi = float64(series[i].Schedules)
			is = append(is, float64(series[i].Interleavings))
			bs = append(bs, float64(series[i].Behaviors))
		}
		x = append(x, xi)
		ilv = append(ilv, stats.Summarize(is).Mean)
		beh = append(beh, stats.Summarize(bs).Mean)
	}
	return
}

// Figure5 renders the coverage curves (paper Figures 5a and 5b) as ASCII
// charts plus a final-coverage table.
func (r *FTPResult) Figure5() string {
	var b strings.Builder
	var ilvSeries, behSeries []report.Series
	tb := report.NewTable("Figure 5 final coverage (mean over trials)",
		"Algorithm", "Interleavings", "Behaviors")
	for _, alg := range FTPAlgorithms {
		x, ilv, beh := r.covCurve(alg)
		ilvSeries = append(ilvSeries, report.Series{Name: alg, X: x, Y: ilv})
		behSeries = append(behSeries, report.Series{Name: alg, X: x, Y: beh})
		if len(ilv) > 0 {
			tb.AddRow(alg, fmt.Sprintf("%.0f", ilv[len(ilv)-1]), fmt.Sprintf("%.0f", beh[len(beh)-1]))
		}
	}
	b.WriteString(report.Curves("Figure 5a: distinct interleavings vs schedules", ilvSeries, 64, 16))
	b.WriteString("\n")
	b.WriteString(report.Curves("Figure 5b: distinct behaviors vs schedules", behSeries, 64, 16))
	b.WriteString("\n")
	b.WriteString(tb.String())
	return b.String()
}
