package experiments

import (
	"fmt"
	"sort"
	"strings"

	"surw/internal/report"
	"surw/internal/runner"
	"surw/internal/sctbench"
	"surw/internal/stats"
	"surw/internal/workpool"
)

// SCTAlgorithms is Table 4's column order.
var SCTAlgorithms = []string{"SURW", "PCT-3", "PCT-10", "POS", "RW", "N-U", "N-S"}

// SCTResult holds the raw data behind Tables 1 and 4.
type SCTResult struct {
	Scale   Scale
	Targets []string
	// Algs is the algorithm column order actually run (SCTAlgorithms
	// unless Scale.SCTAlgs narrowed it).
	Algs []string
	// Results[target][alg]
	Results map[string]map[string]*runner.Result
}

// Progress receives experiment progress lines; nil discards them.
type Progress func(format string, args ...any)

// sctGrid returns the (targets × algorithms) grid of the SCTBench
// experiment after Scale's narrowing flags, in the canonical run order.
// SCTBench, the distributed-campaign plan (SCTPlan), and the workers all
// enumerate cells through it, so one definition decides what a campaign
// contains.
func sctGrid(sc Scale) (targets []runner.Target, algs []string) {
	algs = SCTAlgorithms
	if len(sc.SCTAlgs) > 0 {
		algs = sc.SCTAlgs
	}
	targets = sctbench.Targets()
	if len(sc.SCTTargets) > 0 {
		// Coverage probes (Fig1/bitshift_k) and the surwsync worker-pool
		// family never appear in the default grid, but an explicit
		// SCTTargets list may opt into them.
		candidates := append(append([]runner.Target(nil), targets...),
			sctbench.CoverageTargets()...)
		candidates = append(candidates, sctbench.WorkerPoolTargets()...)
		keep := make(map[string]bool, len(sc.SCTTargets))
		for _, name := range sc.SCTTargets {
			keep[name] = true
		}
		filtered := candidates[:0:0]
		for _, tgt := range candidates {
			if keep[tgt.Name] {
				filtered = append(filtered, tgt)
			}
		}
		targets = filtered
	}
	return targets, algs
}

// sctConfig is the runner configuration of one grid cell (SafeStack gets
// its own larger budget, as in the paper). Everything that feeds the
// session key lives here; Workers/Metrics/Store are execution plumbing
// and do not affect keys.
func sctConfig(sc Scale, tgt runner.Target) runner.Config {
	limit := sc.Limit
	if tgt.Name == "SafeStack" {
		limit = sc.SafeStackLimit
	}
	return runner.Config{
		Sessions:       sc.Sessions,
		Limit:          limit,
		Seed:           sc.Seed,
		StopAtFirstBug: true,
		Coverage:       sc.SCTCoverage,
		Workers:        sc.Workers,
		Metrics:        sc.Metrics,
		Store:          sc.Store,
		Atlas:          sc.Atlas,
	}
}

// SCTPlan enumerates the session keys of every (target, algorithm,
// session) in the SCTBench grid — the shard units of a distributed
// campaign. Keys are built with runner.KeyFor, so they match the records a
// local SCTBench run writes to the store exactly, and a distributed run
// resumed over the same store skips whatever is already done.
func SCTPlan(sc Scale) []runner.SessionKey {
	targets, algs := sctGrid(sc)
	sessions := sc.Sessions
	if sessions <= 0 {
		sessions = 1
	}
	plan := make([]runner.SessionKey, 0, len(targets)*len(algs)*sessions)
	for _, tgt := range targets {
		cfg := sctConfig(sc, tgt)
		for _, alg := range algs {
			for s := 0; s < sessions; s++ {
				plan = append(plan, runner.KeyFor(tgt, alg, cfg, s))
			}
		}
	}
	return plan
}

// SCTBench runs every suite target under every Table 4 algorithm with the
// schedules-to-first-bug methodology. The (target × algorithm) grid fans
// over sc.Workers workers; every cell is seeded independently and
// collected by index, so the tables are bit-identical at any worker count.
func SCTBench(sc Scale, progress Progress) *SCTResult {
	progress = syncProgress(progress)
	targets, algs := sctGrid(sc)
	out := &SCTResult{Scale: sc, Algs: algs, Results: make(map[string]map[string]*runner.Result)}
	type cell struct{ ti, ai int }
	cells := make([]cell, 0, len(targets)*len(algs))
	for ti, tgt := range targets {
		out.Targets = append(out.Targets, tgt.Name)
		out.Results[tgt.Name] = make(map[string]*runner.Result, len(algs))
		for ai := range algs {
			cells = append(cells, cell{ti, ai})
		}
	}
	results, err := workpool.Map(sc.Workers, len(cells), func(i int) (*runner.Result, error) {
		tgt, alg := targets[cells[i].ti], algs[cells[i].ai]
		res, err := runner.RunTarget(tgt, alg, sctConfig(sc, tgt))
		if err != nil {
			return nil, err
		}
		sum, found := res.FirstBugSummary()
		progress("[%2d/%d] %-24s %-6s found %d/%d mean %.0f",
			cells[i].ti+1, len(targets), tgt.Name, alg, found, sc.Sessions, sum.Mean)
		return res, nil
	})
	if err != nil {
		panic(err)
	}
	for i, c := range cells {
		out.Results[targets[c.ti].Name][algs[c.ai]] = results[i]
	}
	return out
}

// Table1 renders the bug-count summary (paper Table 1): per algorithm, the
// number of targets whose bug was exposed in any session, the per-session
// mean, and the Mann-Whitney p-value of SURW's per-session counts against
// each baseline.
func (r *SCTResult) Table1() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Table 1: bugs found on SCTBench+ConVul (max %d; %d sessions x %d schedules)",
			len(r.Targets), r.Scale.Sessions, r.Scale.Limit),
		append([]string{"Metric"}, r.Algs...)...)
	perSession := r.perSessionCounts()

	total := []string{"Total"}
	mean := []string{"Mean"}
	pvals := []string{"p vs SURW"}
	for _, alg := range r.Algs {
		found := 0
		for _, tname := range r.Targets {
			if r.Results[tname][alg].FoundEver() {
				found++
			}
		}
		total = append(total, fmt.Sprintf("%d", found))
		mean = append(mean, fmt.Sprintf("%.2f", stats.Summarize(perSession[alg]).Mean))
		if alg == "SURW" || len(perSession["SURW"]) == 0 {
			pvals = append(pvals, "-")
		} else {
			_, p := stats.MannWhitneyU(perSession["SURW"], perSession[alg])
			pvals = append(pvals, fmt.Sprintf("%.2g", p))
		}
	}
	tb.AddRow(total...)
	tb.AddRow(mean...)
	tb.AddRow(pvals...)
	if missed := r.bugsMissedBySURW(); len(missed) == 0 {
		tb.AddFooter("no target's bug was found by a baseline but missed by SURW")
	} else {
		tb.AddFooter(fmt.Sprintf("targets missed by SURW but found by a baseline: %v", missed))
	}
	if r.Scale.Metrics != nil {
		tb.AddFooter(r.Scale.Metrics.Summary())
	}
	return tb
}

// ThroughputFooter renders the scheduler-throughput line surwbench prints
// beside Tables 1 and 4: mean schedules/s per cell for each algorithm
// column (every cell is one runner batch whose Result carries its
// wall-clock Elapsed) and the grid-wide rate. It is wall-clock — cells
// fanned over a shared worker pool time-slice the CPUs — so it goes to
// stderr with the other timing output, never into the tables themselves,
// which stay bit-identical at any worker count. Empty when no cell
// carries timing (e.g. a grid reassembled from a campaign store).
func (r *SCTResult) ThroughputFooter() string {
	parts := make([]string, 0, len(r.Algs))
	totalSched, totalSec := 0, 0.0
	for _, alg := range r.Algs {
		sched, sec := 0, 0.0
		for _, tname := range r.Targets {
			res := r.Results[tname][alg]
			if res == nil || res.Elapsed <= 0 {
				continue
			}
			sched += res.TotalSchedules()
			sec += res.Elapsed.Seconds()
		}
		totalSched += sched
		totalSec += sec
		if sec > 0 {
			parts = append(parts, fmt.Sprintf("%s %.0f", alg, float64(sched)/sec))
		}
	}
	if totalSec == 0 {
		return ""
	}
	return fmt.Sprintf("schedules/s per cell: %s; overall %.0f",
		strings.Join(parts, ", "), float64(totalSched)/totalSec)
}

// perSessionCounts returns, per algorithm, the number of targets whose bug
// each session exposed.
func (r *SCTResult) perSessionCounts() map[string][]float64 {
	out := make(map[string][]float64)
	for _, alg := range r.Algs {
		counts := make([]float64, r.Scale.Sessions)
		for _, tname := range r.Targets {
			for s, sess := range r.Results[tname][alg].Sessions {
				if sess.FirstBug >= 0 && s < len(counts) {
					counts[s]++
				}
			}
		}
		out[alg] = counts
	}
	return out
}

func (r *SCTResult) bugsMissedBySURW() []string {
	var missed []string
	for _, tname := range r.Targets {
		if surw, ok := r.Results[tname]["SURW"]; !ok || surw.FoundEver() {
			continue
		}
		for _, alg := range r.Algs {
			if alg != "SURW" && r.Results[tname][alg].FoundEver() {
				missed = append(missed, tname)
				break
			}
		}
	}
	sort.Strings(missed)
	return missed
}

// Table4 renders the full schedules-to-first-bug breakdown (paper Table 4,
// Appendix A). The best algorithm per row is bracketed when the log-rank
// test separates it from every rival at p < 0.05.
func (r *SCTResult) Table4() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Table 4: schedules to first bug, mean ± std over %d sessions (limit %d)",
			r.Scale.Sessions, r.Scale.Limit),
		append([]string{"Target"}, r.Algs...)...)
	for _, tname := range r.Targets {
		row := []string{tname}
		best := r.bestAlgorithm(tname)
		for _, alg := range r.Algs {
			res := r.Results[tname][alg]
			sum, found := res.FirstBugSummary()
			cell := report.MeanStd(sum.Mean, sum.Std, found, r.Scale.Sessions)
			if alg == best {
				cell = "[" + cell + "]"
			}
			row = append(row, cell)
		}
		tb.AddRow(row...)
	}
	tb.AddFooter("- never triggered; * not triggered in at least one session;")
	tb.AddFooter("[x] best by log-rank test (p < 0.05 against every rival)")
	tb.AddFooter("profiled algorithms (SURW, PCT, N-U, N-S) include the +1 profiling run")
	return tb
}

// bestAlgorithm returns the algorithm that is log-rank-significantly
// fastest on the target, or "" when no algorithm separates from the rest.
func (r *SCTResult) bestAlgorithm(tname string) string {
	type cand struct {
		alg  string
		mean float64
	}
	var cands []cand
	for _, alg := range r.Algs {
		res := r.Results[tname][alg]
		sum, found := res.FirstBugSummary()
		if found == 0 {
			continue
		}
		mean := sum.Mean
		// Sessions that never found the bug push the effective time up.
		if found < len(res.Sessions) {
			mean = float64(res.Limit)
		}
		cands = append(cands, cand{alg, mean})
	}
	if len(cands) < 2 {
		return ""
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mean < cands[j].mean })
	best := cands[0].alg
	for _, c := range cands[1:] {
		_, p := stats.LogRank(r.Results[tname][best].FirstBugObs(), r.Results[tname][c.alg].FirstBugObs())
		if p >= 0.05 {
			return ""
		}
	}
	return best
}
