package experiments

import (
	"fmt"
	"math"
	"strings"

	"surw/internal/core"
	"surw/internal/report"
	"surw/internal/sched"
	"surw/internal/stats"
	"surw/internal/workpool"
)

// Fig2K is the per-thread event count of the Figure 1/2 program (the paper
// uses 5: 252 interleavings).
const Fig2K = 5

// Fig2Result holds the Figure 2 histograms.
type Fig2Result struct {
	Trials     int
	Classes    int
	Histograms map[string]map[string]int // algorithm -> final x -> count
	ChiSquare  map[string]float64
	Distinct   map[string]int
	Entropy    map[string]float64
}

// Figure2 samples the Figure 1 program with URW, Random Walk and PCT-10 and
// tallies the distribution of the final value of x (the paper's Figure 2
// histograms). URW is provably uniform over the 252 classes; the baselines
// are heavily skewed. The three algorithms run on up to `workers`
// concurrent workers (<= 0 means one per CPU), each on its own sched.Pool
// so the trial loop recycles execution buffers instead of reallocating.
func Figure2(trials int, seed int64, workers int) *Fig2Result {
	prog := Bitshift(Fig2K)
	info := BitshiftInfo(Fig2K)
	res := &Fig2Result{
		Trials:     trials,
		Classes:    int(stats.Binomial(2*Fig2K, Fig2K)),
		Histograms: make(map[string]map[string]int),
		ChiSquare:  make(map[string]float64),
		Distinct:   make(map[string]int),
		Entropy:    make(map[string]float64),
	}
	names := []string{"URW", "RW", "PCT-10"}
	hists, err := workpool.Map(workers, len(names), func(ni int) (map[string]int, error) {
		alg, err := core.New(names[ni])
		if err != nil {
			return nil, err
		}
		pool := sched.NewPool()
		hist := make(map[string]int)
		for i := 0; i < trials; i++ {
			r := pool.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed + int64(i)}, Info: info})
			if r.Buggy() {
				panic(r.Failure)
			}
			hist[r.Behavior]++
		}
		return hist, nil
	})
	if err != nil {
		panic(err)
	}
	for ni, name := range names {
		hist := hists[ni]
		res.Histograms[name] = hist
		counts := make([]int, 0, len(hist))
		for _, c := range hist {
			counts = append(counts, c)
		}
		res.ChiSquare[name] = stats.ChiSquareUniform(counts, res.Classes)
		res.Distinct[name] = len(hist)
		res.Entropy[name] = stats.Entropy(counts)
	}
	return res
}

// Render prints the summary table and, when full is set, the per-algorithm
// histograms (the actual Figure 2 panels).
func (f *Fig2Result) Render(full bool) string {
	var b strings.Builder
	tb := report.NewTable(
		fmt.Sprintf("Figure 2: distribution of final x over %d schedules (%d classes)", f.Trials, f.Classes),
		"Algorithm", "Distinct", "Entropy(bits)", "ChiSq(uniform)")
	for _, name := range []string{"URW", "RW", "PCT-10"} {
		tb.AddRow(name,
			fmt.Sprintf("%d", f.Distinct[name]),
			fmt.Sprintf("%.2f", f.Entropy[name]),
			fmt.Sprintf("%.0f", f.ChiSquare[name]))
	}
	tb.AddFooter(fmt.Sprintf("uniform reference entropy = %.2f bits; chi-square df = %d",
		math.Log2(float64(f.Classes)), f.Classes-1))
	b.WriteString(tb.String())
	if full {
		for _, name := range []string{"URW", "RW", "PCT-10"} {
			b.WriteString("\n")
			b.WriteString(report.Histogram("Figure 2 ("+name+"): final x histogram", f.Histograms[name], 60))
		}
	}
	return b.String()
}
