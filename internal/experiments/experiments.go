// Package experiments regenerates every table and figure of the paper's
// evaluation: Figure 2 (uniformity histograms), Tables 1 and 4 (SCTBench +
// ConVul bug finding), Table 2 (RaceBench distinct bugs), and Table 3 with
// Figure 5 (the LightFTP case study). cmd/surwbench drives it from the
// command line and the repository's benchmarks drive it from testing.B.
package experiments

import (
	"sync"

	"surw/internal/atlas"
	"surw/internal/obs"
	"surw/internal/runner"
	"surw/internal/sched"
)

// Scale sets the experiment budgets. The paper's scale (20 sessions of 10^4
// schedules, 10^6 for SafeStack, 5x10^4 RaceBench iterations, 20 FTP trials
// of 10^4) takes days; DefaultScale reproduces the result shapes on a
// laptop in minutes.
type Scale struct {
	// Seed derives all randomness.
	Seed int64

	// Sessions and Limit drive Tables 1 and 4.
	Sessions int
	Limit    int
	// SafeStackLimit is the separate budget for the SafeStack row.
	SafeStackLimit int

	// RaceBenchLimit is the per-base iteration budget for Table 2.
	RaceBenchLimit int

	// FTPTrials and FTPLimit drive Table 3 and Figure 5.
	FTPTrials int
	FTPLimit  int

	// Fig2Trials is the number of schedules per algorithm for Figure 2.
	Fig2Trials int

	// Workers bounds experiment parallelism: the (target × algorithm) grid
	// of every driver and the sessions inside each RunTarget fan over this
	// many workers. 1 reproduces the legacy sequential loops; <= 0 means
	// one worker per CPU (runtime.GOMAXPROCS(0)). Every table and figure
	// is bit-identical under any setting — cells and sessions derive their
	// seeds from their own indices and results are collected by index.
	Workers int

	// Metrics, when non-nil, aggregates observability counters (schedule
	// throughput, per-algorithm decision histograms, worker utilization)
	// across every RunTarget the drivers issue. Purely observational:
	// attaching it never changes any table or figure. See internal/obs.
	Metrics *obs.Metrics

	// Atlas, when non-nil, accumulates schedule-space cartography and
	// per-cell uniformity drift across every SCTBench grid cell (see
	// internal/atlas). Execution plumbing like Metrics — it never changes
	// a session key, a table, or a figure, and unlike Metrics it keeps the
	// batched fast path.
	Atlas *atlas.Atlas

	// Store, when non-nil, makes every RunTarget-backed driver (sct, rb,
	// ftp) crash-safe and resumable: completed sessions are persisted as
	// they finish and skipped on restart, and the tables a resumed run
	// renders are byte-identical to an uninterrupted run's at any Workers
	// setting. internal/campaign provides the JSONL-backed implementation.
	// Figure 2 samples schedules directly (no RunTarget), so it is rerun
	// from scratch on resume.
	Store runner.SessionStore

	// SCTTargets, when non-empty, restricts the SCTBench driver to the
	// named targets; SCTAlgs likewise overrides its algorithm columns.
	// Both exist so a tiny campaign (two cells) can exercise the full
	// store/resume/dashboard path in CI; the full grids remain the default.
	SCTTargets []string
	SCTAlgs    []string

	// SCTCoverage turns on per-session coverage tallies (interleaving and
	// commutation-class fingerprints, runner.Config.Coverage) for every
	// SCTBench grid cell. The class fingerprints feed the dedup-aware
	// aggregates (internal/campaign) and the coordinator's seen-class
	// filter (internal/remote). It changes session keys — a coverage
	// campaign is a different campaign — so flipping it never collides
	// with records from a plain run sharing the store.
	SCTCoverage bool
}

// DefaultScale is the laptop-scale configuration.
func DefaultScale() Scale {
	return Scale{
		Seed:           1,
		Sessions:       4,
		Limit:          2000,
		SafeStackLimit: 20_000,
		RaceBenchLimit: 2000,
		FTPTrials:      5,
		FTPLimit:       1500,
		Fig2Trials:     25_200,
	}
}

// PaperScale matches the paper's budgets. Expect days of compute.
func PaperScale() Scale {
	return Scale{
		Seed:           1,
		Sessions:       20,
		Limit:          10_000,
		SafeStackLimit: 1_000_000,
		RaceBenchLimit: 50_000,
		FTPTrials:      20,
		FTPLimit:       10_000,
		Fig2Trials:     25_200,
	}
}

// syncProgress serializes a Progress callback so concurrent grid cells can
// report without interleaving lines; nil stays a no-op.
func syncProgress(p Progress) Progress {
	if p == nil {
		return func(string, ...any) {}
	}
	var mu sync.Mutex
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		p(format, args...)
	}
}

// Bitshift is the Figure 1 program: two threads atomically append a bit to
// shared x (thread A a 0, thread B a 1), k times each; the final value of x
// identifies the interleaving, and there are C(2k, k) of them.
func Bitshift(k int) func(*sched.Thread) {
	return func(t *sched.Thread) {
		x := t.NewVar("x", 1)
		a := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v << 1 })
			}
		})
		b := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v<<1 + 1 })
			}
		})
		t.Join(a)
		t.Join(b)
		t.SetBehavior(formatBits(x.Peek(), k))
	}
}

// formatBits renders the final x as a fixed-width binary string (without
// the sentinel leading 1), so histogram keys sort naturally.
func formatBits(v int64, k int) string {
	n := 2 * k
	buf := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		buf[i] = byte('0' + v&1)
		v >>= 1
	}
	return string(buf)
}

// BitshiftInfo hand-builds the exact profile for Bitshift(k).
func BitshiftInfo(k int) *sched.ProgramInfo {
	pi := sched.NewProgramInfo()
	root := pi.AddThread("0", "")
	a := pi.AddThread("0.0", "0")
	b := pi.AddThread("0.1", "0")
	pi.Events[root] = 2
	pi.Events[a] = k
	pi.Events[b] = k
	copy(pi.InterestingEvents, pi.Events)
	pi.TotalEvents = 2 + 2*k
	return pi
}
