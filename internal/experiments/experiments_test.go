package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps the experiment tests fast; shape assertions that need
// larger budgets live in the per-package tests and the benchmarks.
func tinyScale() Scale {
	return Scale{
		Seed:           3,
		Sessions:       2,
		Limit:          120,
		SafeStackLimit: 120,
		RaceBenchLimit: 120,
		FTPTrials:      2,
		FTPLimit:       150,
		Fig2Trials:     2520,
	}
}

func TestFigure2ShapesAndRender(t *testing.T) {
	// Workers: 2 exercises the parallel grid; results are worker-count
	// independent so the assertions below hold regardless.
	f := Figure2(tinyScale().Fig2Trials, 1, 2)
	if f.Classes != 252 {
		t.Fatalf("classes = %d", f.Classes)
	}
	if f.ChiSquare["URW"] >= f.ChiSquare["RW"] {
		t.Fatalf("URW chi2 %.0f should be far below RW %.0f", f.ChiSquare["URW"], f.ChiSquare["RW"])
	}
	if f.ChiSquare["URW"] >= f.ChiSquare["PCT-10"] {
		t.Fatalf("URW chi2 %.0f should be far below PCT-10 %.0f", f.ChiSquare["URW"], f.ChiSquare["PCT-10"])
	}
	if f.Distinct["URW"] < f.Distinct["PCT-10"] {
		t.Fatalf("URW distinct %d < PCT-10 %d", f.Distinct["URW"], f.Distinct["PCT-10"])
	}
	out := f.Render(true)
	for _, want := range []string{"Figure 2", "URW", "RW", "PCT-10", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// All bitshift outcomes carry k ones and k zeros.
	for beh := range f.Histograms["URW"] {
		if strings.Count(beh, "1") != Fig2K || len(beh) != 2*Fig2K {
			t.Fatalf("malformed behaviour key %q", beh)
		}
	}
}

func TestSCTBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment; run without -short")
	}
	sc := tinyScale()
	r := SCTBench(sc, nil)
	if len(r.Targets) != 38 {
		t.Fatalf("targets = %d", len(r.Targets))
	}
	t1 := r.Table1().String()
	if !strings.Contains(t1, "Total") || !strings.Contains(t1, "SURW") {
		t.Fatalf("table 1 malformed:\n%s", t1)
	}
	t4 := r.Table4().String()
	if !strings.Contains(t4, "CS/reorder_3") || !strings.Contains(t4, "SafeStack") {
		t.Fatalf("table 4 malformed:\n%s", t4)
	}
	// Easy targets must be found even at tiny scale.
	for _, tname := range []string{"CS/lazy01", "CS/deadlock01", "RADBench/bug6"} {
		if !r.Results[tname]["SURW"].FoundEver() {
			t.Fatalf("SURW missed %s even at tiny scale", tname)
		}
	}
	// Unfindable targets must render as "-" everywhere.
	for _, tname := range []string{"Inspect/bbuf", "RADBench/bug5", "ConVul/CVE-2017-15265"} {
		for _, alg := range SCTAlgorithms {
			if r.Results[tname][alg].FoundEver() {
				t.Fatalf("%s/%s found an unfindable bug", tname, alg)
			}
		}
	}
}

func TestRaceBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment; run without -short")
	}
	sc := tinyScale()
	r := RaceBench(sc, nil)
	if len(r.Bases) != 15 {
		t.Fatalf("bases = %d", len(r.Bases))
	}
	totals := r.Totals()
	if totals["SURW"] == 0 || totals["POS"] == 0 {
		t.Fatalf("no bugs found: %v", totals)
	}
	out := r.Table2().String()
	for _, want := range []string{"cholesky*", "Total (max 1500)", "blackscholes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestLightFTPSmall(t *testing.T) {
	sc := tinyScale()
	r := LightFTP(sc, nil)
	for _, alg := range FTPAlgorithms {
		if len(r.Trials[alg]) != sc.FTPTrials {
			t.Fatalf("%s has %d trials", alg, len(r.Trials[alg]))
		}
	}
	t3 := r.Table3().String()
	if !strings.Contains(t3, "Interleavings") || !strings.Contains(t3, "±") {
		t.Fatalf("table 3 malformed:\n%s", t3)
	}
	f5 := r.Figure5()
	for _, want := range []string{"Figure 5a", "Figure 5b", "SURW"} {
		if !strings.Contains(f5, want) {
			t.Fatalf("figure 5 missing %q:\n%s", want, f5)
		}
	}
}

func TestScalesSane(t *testing.T) {
	d, p := DefaultScale(), PaperScale()
	if d.Limit >= p.Limit || d.Sessions >= p.Sessions {
		t.Fatal("default scale should be smaller than paper scale")
	}
	if p.SafeStackLimit != 1_000_000 || p.RaceBenchLimit != 50_000 {
		t.Fatalf("paper scale wrong: %+v", p)
	}
}

func TestBitshiftInfoMatchesProgram(t *testing.T) {
	// The hand-built profile must agree with an actual census.
	info := BitshiftInfo(4)
	if info.TotalEvents != 10 || info.NumThreads() != 3 {
		t.Fatalf("info = %+v", info)
	}
	if info.Events[info.LID("0.0")] != 4 {
		t.Fatal("worker count wrong")
	}
}

func TestFormatBits(t *testing.T) {
	// 0b1_0101 with k=2 strips to "0101".
	if got := formatBits(0b10101, 2); got != "0101" {
		t.Fatalf("formatBits = %q", got)
	}
}
