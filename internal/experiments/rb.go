package experiments

import (
	"fmt"
	"strings"

	"surw/internal/racebench"
	"surw/internal/report"
	"surw/internal/runner"
	"surw/internal/workpool"
)

// RBAlgorithms is Table 2's column order.
var RBAlgorithms = []string{"SURW", "PCT-3", "PCT-10", "POS", "RW"}

// RBResult holds the raw data behind Table 2.
type RBResult struct {
	Scale Scale
	Bases []string
	// Distinct[base][alg] = number of distinct injected bugs exposed.
	Distinct map[string]map[string]int
	Partial  map[string]bool
	// cellSched/cellSecs accumulate, per algorithm, the schedules run and
	// wall-clock seconds spent across its cells, for Table 2's
	// schedules/s footer.
	cellSched map[string]int
	cellSecs  map[string]float64
}

// RaceBench runs every base program for the configured iteration budget
// under every Table 2 algorithm, counting distinct injected bugs (the
// RaceBench methodology: sampling continues after each crash).
// The (base × algorithm) grid fans over sc.Workers workers with
// index-ordered collection, so Table 2 is identical at any worker count.
func RaceBench(sc Scale, progress Progress) *RBResult {
	progress = syncProgress(progress)
	out := &RBResult{
		Scale:     sc,
		Distinct:  make(map[string]map[string]int),
		Partial:   make(map[string]bool),
		cellSched: make(map[string]int),
		cellSecs:  make(map[string]float64),
	}
	suite := racebench.Suite()
	type cell struct{ bi, ai int }
	cells := make([]cell, 0, len(suite)*len(RBAlgorithms))
	for bi, base := range suite {
		out.Bases = append(out.Bases, base.Name)
		out.Partial[base.Name] = base.Partial
		out.Distinct[base.Name] = make(map[string]int, len(RBAlgorithms))
		for ai := range RBAlgorithms {
			cells = append(cells, cell{bi, ai})
		}
	}
	type cellOut struct {
		distinct, sched int
		secs            float64
	}
	counts, err := workpool.Map(sc.Workers, len(cells), func(i int) (cellOut, error) {
		base, alg := suite[cells[i].bi], RBAlgorithms[cells[i].ai]
		res, err := runner.RunTarget(base.Target(), alg, runner.Config{
			Sessions: 1,
			Limit:    sc.RaceBenchLimit,
			Seed:     sc.Seed,
			Workers:  sc.Workers,
			Metrics:  sc.Metrics,
			Store:    sc.Store,
		})
		if err != nil {
			return cellOut{}, err
		}
		n := len(res.DistinctBugs())
		progress("[%2d/%d] %-16s %-6s %d distinct", cells[i].bi+1, len(suite), base.Name, alg, n)
		return cellOut{distinct: n, sched: res.TotalSchedules(), secs: res.Elapsed.Seconds()}, nil
	})
	if err != nil {
		panic(err)
	}
	for i, c := range cells {
		alg := RBAlgorithms[c.ai]
		out.Distinct[suite[c.bi].Name][alg] = counts[i].distinct
		out.cellSched[alg] += counts[i].sched
		out.cellSecs[alg] += counts[i].secs
	}
	return out
}

// Table2 renders the distinct-bug counts (paper Table 2).
func (r *RBResult) Table2() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Table 2: distinct bugs exposed in RaceBench (100 injected per base; %d iterations)",
			r.Scale.RaceBenchLimit),
		append([]string{"Target"}, RBAlgorithms...)...)
	totals := make(map[string]int)
	for _, base := range r.Bases {
		name := base
		if r.Partial[base] {
			name += "*"
		}
		row := []string{name}
		bestAlg, bestN := "", -1
		for _, alg := range RBAlgorithms {
			n := r.Distinct[base][alg]
			totals[alg] += n
			if n > bestN {
				bestAlg, bestN = alg, n
			}
		}
		for _, alg := range RBAlgorithms {
			cell := fmt.Sprintf("%d", r.Distinct[base][alg])
			if alg == bestAlg {
				cell = "[" + cell + "]"
			}
			row = append(row, cell)
		}
		tb.AddRow(row...)
	}
	totalRow := []string{fmt.Sprintf("Total (max %d)", len(r.Bases)*racebench.NumBugs)}
	for _, alg := range RBAlgorithms {
		totalRow = append(totalRow, fmt.Sprintf("%d", totals[alg]))
	}
	tb.AddRow(totalRow...)
	tb.AddFooter("* selectively instrumented base; [x] most bugs on the row")
	if r.Scale.Metrics != nil {
		tb.AddFooter(r.Scale.Metrics.Summary())
	}
	return tb
}

// Totals returns per-algorithm distinct-bug totals.
func (r *RBResult) Totals() map[string]int {
	totals := make(map[string]int)
	for _, base := range r.Bases {
		for _, alg := range RBAlgorithms {
			totals[alg] += r.Distinct[base][alg]
		}
	}
	return totals
}

// ThroughputFooter mirrors SCTResult.ThroughputFooter for the RaceBench
// grid: mean schedules/s per cell for each algorithm column, plus the
// grid-wide wall-clock rate. Wall-clock, so surwbench prints it to stderr
// beside Table 2, keeping the table bit-identical at any worker count.
// Empty when the grid carries no timing.
func (r *RBResult) ThroughputFooter() string {
	parts := make([]string, 0, len(RBAlgorithms))
	totalSched, totalSec := 0, 0.0
	for _, alg := range RBAlgorithms {
		if r.cellSecs[alg] <= 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.0f", alg, float64(r.cellSched[alg])/r.cellSecs[alg]))
		totalSched += r.cellSched[alg]
		totalSec += r.cellSecs[alg]
	}
	if totalSec == 0 {
		return ""
	}
	return fmt.Sprintf("schedules/s per cell: %s; overall %.0f",
		strings.Join(parts, ", "), float64(totalSched)/totalSec)
}
