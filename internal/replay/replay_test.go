package replay

import (
	"fmt"
	"strings"
	"testing"

	"surw/internal/core"
	"surw/internal/sched"
)

// torn is a program whose assert fails when the two writes of the setter
// are split by the checker.
func torn(t *sched.Thread) {
	a := t.NewVar("a", 0)
	b := t.NewVar("b", 0)
	set := t.Go(func(w *sched.Thread) {
		a.Store(w, 1)
		b.Store(w, 1)
	})
	chk := t.Go(func(w *sched.Thread) {
		av, bv := a.Load(w), b.Load(w)
		w.Assert(!(av == 1 && bv == 0), "torn")
	})
	t.Join(set)
	t.Join(chk)
}

// findFailure records schedules until one fails.
func findFailure(t *testing.T) (Recording, *sched.Result) {
	t.Helper()
	for seed := int64(0); seed < 500; seed++ {
		res, rec := Record(torn, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed}})
		if res.Buggy() {
			return rec, res
		}
	}
	t.Fatal("no failing schedule found")
	return Recording{}, nil
}

func TestRecordReplayRoundTrip(t *testing.T) {
	rec, orig := findFailure(t)
	res := Replay(torn, rec, sched.Options{})
	if !res.Buggy() || res.Failure.BugID != orig.Failure.BugID {
		t.Fatalf("replay diverged: %+v vs %+v", res.Failure, orig.Failure)
	}
	if res.InterleavingHash != orig.InterleavingHash {
		t.Fatal("replayed interleaving differs from the recorded one")
	}
}

func TestRecordingsOfCleanRunsReplayCleanly(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		res, rec := Record(torn, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed}})
		if res.Buggy() {
			continue
		}
		again := Replay(torn, rec, sched.Options{})
		if again.InterleavingHash != res.InterleavingHash {
			t.Fatalf("seed %d: clean replay diverged", seed)
		}
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	for _, rec := range []Recording{
		{},
		{Choices: []int{0}},
		{Choices: []int{3, 0, 2, 1, 1}},
	} {
		s := rec.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if len(back.Choices) != len(rec.Choices) {
			t.Fatalf("%q: round trip lost entries", s)
		}
		for i := range rec.Choices {
			if back.Choices[i] != rec.Choices[i] {
				t.Fatalf("%q: entry %d differs", s, i)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "abc", "2:1", "1:x", "1:-2", "nope"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestMinimizePreservesBug(t *testing.T) {
	rec, orig := findFailure(t)
	min, attempts := Minimize(torn, rec, orig.Failure.BugID, sched.Options{}, 0)
	if attempts == 0 {
		t.Fatal("no minimization attempts made")
	}
	res := Replay(torn, min, sched.Options{})
	if !res.Buggy() || res.Failure.BugID != orig.Failure.BugID {
		t.Fatalf("minimized recording lost the bug: %+v", res.Failure)
	}
	if len(min.Choices) > len(rec.Choices) {
		t.Fatal("minimization grew the recording")
	}
}

func TestMinimizeShrinksNoisyRecording(t *testing.T) {
	// A noisy program: the failing schedule found by RW carries many
	// irrelevant choices that minimization should flatten.
	noisy := func(t *sched.Thread) {
		x := t.NewVar("x", 0)
		noise := t.NewVar("noise", 0)
		set := t.Go(func(w *sched.Thread) {
			for i := 0; i < 5; i++ {
				noise.Add(w, 1)
			}
			x.Store(w, 1)
			x.Store(w, 2)
		})
		chk := t.Go(func(w *sched.Thread) {
			for i := 0; i < 5; i++ {
				noise.Add(w, 1)
			}
			w.Assert(x.Load(w) != 1, "mid-write")
		})
		t.Join(set)
		t.Join(chk)
	}
	var rec Recording
	var bugID string
	found := false
	for seed := int64(0); seed < 2000 && !found; seed++ {
		res, r := Record(noisy, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed}})
		if res.Buggy() {
			rec, bugID, found = r, res.Failure.BugID, true
		}
	}
	if !found {
		t.Fatal("bug not found")
	}
	min, _ := Minimize(noisy, rec, bugID, sched.Options{}, 0)
	nonZero := 0
	for _, c := range min.Choices {
		if c != 0 {
			nonZero++
		}
	}
	origNonZero := 0
	for _, c := range rec.Choices {
		if c != 0 {
			origNonZero++
		}
	}
	if nonZero > origNonZero {
		t.Fatalf("minimization increased non-default choices: %d > %d", nonZero, origNonZero)
	}
	if !strings.Contains(min.String(), ":") {
		t.Fatal("serialization broken")
	}
}

func TestRecorderForwardsSpawnObserver(t *testing.T) {
	// SURW behind a Recorder must behave identically to bare SURW (the
	// recorder forwards Begin/Observe/ObserveSpawn), so equal seeds give
	// equal interleavings.
	info := sched.NewProgramInfo()
	info.AddThread("0", "")
	for i := 0; i < 2; i++ {
		l := info.AddThread("0."+string(rune('0'+i)), "0")
		info.Events[l] = 3
		info.InterestingEvents[l] = 3
	}
	info.TotalEvents = 6
	prog := func(t *sched.Thread) {
		x := t.NewVar("x", 0)
		h1 := t.Go(func(w *sched.Thread) { x.Add(w, 1); x.Add(w, 1); x.Add(w, 1) })
		h2 := t.Go(func(w *sched.Thread) { x.Add(w, 1); x.Add(w, 1); x.Add(w, 1) })
		t.Join(h1)
		t.Join(h2)
	}
	for seed := int64(0); seed < 20; seed++ {
		bare := sched.Run(prog, core.NewSURW(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		wrapped, _ := Record(prog, core.NewSURW(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		if bare.InterleavingHash != wrapped.InterleavingHash {
			t.Fatalf("seed %d: recorder perturbed SURW", seed)
		}
	}
}

// chanProg exercises channel events (cond waits, wakelocks, signals behind
// the Chan implementation): two producers race into a buffered channel and
// one consumer drains it.
func chanProg(t *sched.Thread) {
	ch := sched.NewChan[int64](t, "ch", 2)
	sum := t.NewVar("sum", 0)
	p1 := t.Go(func(w *sched.Thread) { ch.Send(w, 1); ch.Send(w, 2) })
	p2 := t.Go(func(w *sched.Thread) { ch.Send(w, 10) })
	c := t.Go(func(w *sched.Thread) {
		for i := 0; i < 3; i++ {
			v, ok := ch.Recv(w)
			w.Assert(ok, "chan-closed-early")
			sum.Add(w, v)
		}
	})
	t.JoinAll(p1, p2, c)
	t.SetBehavior(fmt.Sprintf("%d", sum.Peek()))
}

// wgProg exercises waitgroup events: workers Done concurrently while a
// waiter blocks on the counter.
func wgProg(t *sched.Thread) {
	wg := t.NewWaitGroup("wg")
	x := t.NewVar("x", 0)
	wg.Add(t, 2)
	w1 := t.Go(func(w *sched.Thread) { x.Add(w, 1); wg.Done(w) })
	w2 := t.Go(func(w *sched.Thread) { x.Add(w, 2); wg.Done(w) })
	waiter := t.Go(func(w *sched.Thread) {
		wg.Wait(w)
		w.Assert(x.Load(w) == 3, "wg-early")
	})
	t.JoinAll(w1, w2, waiter)
}

// semProg exercises semaphore events: producers V, consumers P with
// blocking.
func semProg(t *sched.Thread) {
	sem := t.NewSemaphore("sem", 0)
	x := t.NewVar("x", 0)
	p := t.Go(func(w *sched.Thread) { x.Add(w, 1); sem.V(w); x.Add(w, 1); sem.V(w) })
	c := t.Go(func(w *sched.Thread) { sem.P(w); sem.P(w); x.Add(w, 10) })
	t.JoinAll(p, c)
	t.SetBehavior(fmt.Sprintf("%d", x.Peek()))
}

// TestSyncObjectRoundTrips closes the coverage gap on synchronization
// events: recordings over channel, waitgroup, and semaphore programs must
// replay bit-exactly (hash and behaviour), both via the lenient and the
// strict player.
func TestSyncObjectRoundTrips(t *testing.T) {
	progs := map[string]func(*sched.Thread){
		"chan": chanProg, "waitgroup": wgProg, "semaphore": semProg,
	}
	for name, prog := range progs {
		for seed := int64(0); seed < 30; seed++ {
			res, rec := Record(prog, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: seed}})
			if res.Buggy() {
				t.Fatalf("%s seed %d: spurious failure %v", name, seed, res.Failure)
			}
			again := Replay(prog, rec, sched.Options{})
			if again.InterleavingHash != res.InterleavingHash || again.Behavior != res.Behavior {
				t.Fatalf("%s seed %d: replay diverged", name, seed)
			}
			strict, err := ReplayStrict(prog, rec, sched.Options{})
			if err != nil {
				t.Fatalf("%s seed %d: strict replay rejected its own recording: %v", name, seed, err)
			}
			if strict.InterleavingHash != res.InterleavingHash {
				t.Fatalf("%s seed %d: strict replay diverged", name, seed)
			}
		}
	}
}

// TestReplayStrictTruncatedRecording: a recording cut short must be
// diagnosed, with the decision index in the message.
func TestReplayStrictTruncatedRecording(t *testing.T) {
	_, rec := Record(chanProg, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 3}})
	if len(rec.Choices) < 4 {
		t.Skip("recording too short to truncate meaningfully")
	}
	cut := Recording{Choices: rec.Choices[:2]}
	res, err := ReplayStrict(chanProg, cut, sched.Options{})
	if err == nil {
		t.Fatal("truncated recording not diagnosed")
	}
	if !strings.Contains(err.Error(), "truncated") || !strings.Contains(err.Error(), "decision 2") {
		t.Fatalf("unactionable truncation error: %v", err)
	}
	if res == nil {
		t.Fatal("strict replay must still return the fallback result")
	}
}

// TestReplayStrictDivergentRecording: an out-of-range recorded choice must
// be diagnosed as a divergence (the lenient player silently picks 0).
func TestReplayStrictDivergentRecording(t *testing.T) {
	_, rec := Record(semProg, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 1}})
	bad := Recording{Choices: append([]int(nil), rec.Choices...)}
	bad.Choices[0] = 97 // no schedule ever has 98 enabled threads here
	_, err := ReplayStrict(semProg, bad, sched.Options{})
	if err == nil {
		t.Fatal("divergent recording not diagnosed")
	}
	if !strings.Contains(err.Error(), "divergence at decision 0") ||
		!strings.Contains(err.Error(), "recorded choice 97") {
		t.Fatalf("unactionable divergence error: %v", err)
	}
}

// TestReplayStrictLeftoverChoices: a recording with more choices than the
// program consults (e.g. recorded on a longer program) is also a
// divergence.
func TestReplayStrictLeftoverChoices(t *testing.T) {
	_, rec := Record(wgProg, core.NewRandomWalk(), sched.Options{Base: sched.Base{Seed: 2}})
	long := Recording{Choices: append(append([]int(nil), rec.Choices...), 0, 0, 0, 0, 0, 0, 0, 0)}
	_, err := ReplayStrict(wgProg, long, sched.Options{})
	if err == nil {
		t.Fatal("leftover recorded choices not diagnosed")
	}
	if !strings.Contains(err.Error(), "consulted only") {
		t.Fatalf("unactionable leftover error: %v", err)
	}
}
