// Package replay records, replays, and minimizes schedules. A Recording
// captures the choice an algorithm made at every consulted decision point
// (single-enabled steps need no choice and are omitted); replaying a
// recording reproduces the schedule exactly on the same deterministic
// program. Minimize shrinks a failing recording by removing preemptive
// context switches while preserving the failure — the paper's replayable-
// schedule property turned into a debugging aid.
package replay

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"surw/internal/sched"
)

// Recording is the sequence of choices (indices into the enabled set) at
// each consulted decision.
type Recording struct {
	Choices []int
}

// String serializes the recording compactly ("3:0,2,1,...").
func (r Recording) String() string {
	parts := make([]string, len(r.Choices))
	for i, c := range r.Choices {
		parts[i] = strconv.Itoa(c)
	}
	return strconv.Itoa(len(r.Choices)) + ":" + strings.Join(parts, ",")
}

// Parse deserializes a Recording produced by String.
func Parse(s string) (Recording, error) {
	head, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Recording{}, fmt.Errorf("replay: missing length prefix in %q", s)
	}
	n, err := strconv.Atoi(head)
	if err != nil {
		return Recording{}, fmt.Errorf("replay: bad length in %q: %v", s, err)
	}
	if n == 0 && rest == "" {
		return Recording{}, nil
	}
	parts := strings.Split(rest, ",")
	if len(parts) != n {
		return Recording{}, fmt.Errorf("replay: length %d != %d entries", n, len(parts))
	}
	rec := Recording{Choices: make([]int, n)}
	for i, p := range parts {
		c, err := strconv.Atoi(p)
		if err != nil || c < 0 {
			return Recording{}, fmt.Errorf("replay: bad choice %q", p)
		}
		rec.Choices[i] = c
	}
	return rec, nil
}

// Recorder wraps an algorithm and records its choices.
type Recorder struct {
	Inner   sched.Algorithm
	choices []int
}

// NewRecorder wraps inner.
func NewRecorder(inner sched.Algorithm) *Recorder { return &Recorder{Inner: inner} }

// Name implements sched.Algorithm.
func (r *Recorder) Name() string { return "record(" + r.Inner.Name() + ")" }

// Begin implements sched.Algorithm.
func (r *Recorder) Begin(info *sched.ProgramInfo, rng *rand.Rand) {
	r.choices = r.choices[:0]
	r.Inner.Begin(info, rng)
}

// Next implements sched.Algorithm.
func (r *Recorder) Next(st *sched.State) sched.ThreadID {
	tid := r.Inner.Next(st)
	idx := 0
	for i, e := range st.Enabled() {
		if e == tid {
			idx = i
			break
		}
	}
	r.choices = append(r.choices, idx)
	return tid
}

// Observe implements sched.Algorithm.
func (r *Recorder) Observe(ev sched.Event, st *sched.State) { r.Inner.Observe(ev, st) }

// ObserveSpawn forwards spawn notifications when the inner algorithm wants
// them.
func (r *Recorder) ObserveSpawn(parent, child sched.ThreadID, st *sched.State) {
	if so, ok := r.Inner.(sched.SpawnObserver); ok {
		so.ObserveSpawn(parent, child, st)
	}
}

// AppendAnnotation forwards the inner algorithm's tracer annotation
// (sched.Annotator), so decision traces captured through a Recorder — the
// flight-recorder path — keep the algorithm's internal state visible.
func (r *Recorder) AppendAnnotation(buf []byte, st *sched.State) []byte {
	if an, ok := r.Inner.(sched.Annotator); ok {
		return an.AppendAnnotation(buf, st)
	}
	return buf
}

// Recording returns the choices of the last completed schedule.
func (r *Recorder) Recording() Recording {
	return Recording{Choices: append([]int(nil), r.choices...)}
}

// Player replays a Recording; past its end (or on an out-of-range choice,
// which cannot happen on the deterministic program that produced it) it
// continues non-preemptively.
type Player struct {
	Rec  Recording
	step int
	prev sched.ThreadID
}

// NewPlayer replays rec.
func NewPlayer(rec Recording) *Player { return &Player{Rec: rec} }

// Name implements sched.Algorithm.
func (p *Player) Name() string { return "replay" }

// Begin implements sched.Algorithm.
func (p *Player) Begin(*sched.ProgramInfo, *rand.Rand) {
	p.step = 0
	p.prev = -1
}

// Next implements sched.Algorithm.
func (p *Player) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	idx := -1
	if p.step < len(p.Rec.Choices) && p.Rec.Choices[p.step] < len(e) {
		idx = p.Rec.Choices[p.step]
	}
	p.step++
	if idx < 0 {
		for i, tid := range e {
			if tid == p.prev {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = 0
		}
	}
	return e[idx]
}

// Observe implements sched.Algorithm.
func (p *Player) Observe(ev sched.Event, _ *sched.State) { p.prev = ev.TID }

// Record runs one schedule of prog under alg with recording enabled and
// returns the result with its recording.
func Record(prog func(*sched.Thread), alg sched.Algorithm, opts sched.Options) (*sched.Result, Recording) {
	rec := NewRecorder(alg)
	res := sched.Run(prog, rec, opts)
	return res, rec.Recording()
}

// Replay re-executes a recording and returns its result. opts.Seed is
// irrelevant (the player consumes no randomness); ProgSeed and MaxSteps
// must match the recording run.
func Replay(prog func(*sched.Thread), rec Recording, opts sched.Options) *sched.Result {
	return sched.Run(prog, NewPlayer(rec), opts)
}

// StrictPlayer replays a Recording like Player but records a diagnostic
// instead of silently falling back when the recording and the program
// disagree: a recording that runs out before the program stops consulting
// decisions (truncated trace), a recorded choice outside the enabled set,
// or a recording with leftover choices after the program finished all
// indicate the replay ran against a different program, prog-seed, or step
// budget than the recording run.
type StrictPlayer struct {
	Rec  Recording
	step int
	prev sched.ThreadID
	err  error
}

// NewStrictPlayer replays rec, diagnosing divergence.
func NewStrictPlayer(rec Recording) *StrictPlayer { return &StrictPlayer{Rec: rec} }

// Name implements sched.Algorithm.
func (p *StrictPlayer) Name() string { return "replay-strict" }

// Begin implements sched.Algorithm.
func (p *StrictPlayer) Begin(*sched.ProgramInfo, *rand.Rand) {
	p.step = 0
	p.prev = -1
	p.err = nil
}

// Next implements sched.Algorithm. After a divergence it continues
// non-preemptively (the schedule still terminates) but keeps the first
// diagnostic for Err.
func (p *StrictPlayer) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	step := p.step
	p.step++
	if step >= len(p.Rec.Choices) {
		if p.err == nil {
			p.err = fmt.Errorf("replay: recording truncated: program consulted decision %d but the recording holds only %d choices; re-record with the same program, ProgSeed, and MaxSteps",
				step, len(p.Rec.Choices))
		}
		return p.fallback(e)
	}
	c := p.Rec.Choices[step]
	if c >= len(e) {
		if p.err == nil {
			p.err = fmt.Errorf("replay: divergence at decision %d (schedule step %d): recorded choice %d but only %d threads enabled; the program or options differ from the recording run",
				step, st.Step(), c, len(e))
		}
		return p.fallback(e)
	}
	return e[c]
}

func (p *StrictPlayer) fallback(e []sched.ThreadID) sched.ThreadID {
	for i, tid := range e {
		if tid == p.prev {
			return e[i]
		}
	}
	return e[0]
}

// Observe implements sched.Algorithm.
func (p *StrictPlayer) Observe(ev sched.Event, _ *sched.State) { p.prev = ev.TID }

// Err returns the first divergence diagnosed during the last schedule, or
// nil if the recording was followed exactly. Call after the schedule ends;
// leftover recorded choices the program never consulted also count.
func (p *StrictPlayer) Err() error {
	if p.err == nil && p.step < len(p.Rec.Choices) {
		return fmt.Errorf("replay: recording holds %d choices but the program consulted only %d decisions; the program or options differ from the recording run",
			len(p.Rec.Choices), p.step)
	}
	return p.err
}

// ReplayStrict re-executes a recording and returns its result, plus an
// actionable error when the program did not consult exactly the recorded
// decisions (truncated or divergent trace). The result is still returned on
// error — the schedule ran to completion under the fallback policy — so
// callers can inspect how far the replay got.
func ReplayStrict(prog func(*sched.Thread), rec Recording, opts sched.Options) (*sched.Result, error) {
	p := NewStrictPlayer(rec)
	res := sched.Run(prog, p, opts)
	return res, p.Err()
}

// Minimize greedily simplifies a failing recording while preserving its
// bug ID: for each decision, it tries replacing the recorded choice with
// the non-preemptive one (marked by dropping the entry and every later
// one, letting the player's continuation take over) and with choice 0,
// keeping any change under which the failure persists. The result
// typically has far fewer preemptions, making the failing interleaving
// readable. maxAttempts bounds replay executions (0 = 10,000).
func Minimize(prog func(*sched.Thread), rec Recording, bugID string, opts sched.Options, maxAttempts int) (Recording, int) {
	if maxAttempts <= 0 {
		maxAttempts = 10_000
	}
	attempts := 0
	fails := func(r Recording) bool {
		if attempts >= maxAttempts {
			return false
		}
		attempts++
		res := Replay(prog, r, opts)
		return res.Buggy() && res.Failure.BugID == bugID
	}
	cur := Recording{Choices: append([]int(nil), rec.Choices...)}

	// Pass 1: truncate the tail — everything after the failure is noise,
	// and often the bug still fires with the continuation policy replacing
	// the last recorded choices.
	lo, hi := 0, len(cur.Choices)
	for lo < hi {
		mid := (lo + hi) / 2
		if fails(Recording{Choices: cur.Choices[:mid]}) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(cur.Choices) && fails(Recording{Choices: cur.Choices[:lo]}) {
		cur.Choices = append([]int(nil), cur.Choices[:lo]...)
	}

	// Pass 2: flatten individual choices to 0 (the least-preemptive
	// deterministic option) where the failure persists.
	for i := range cur.Choices {
		if cur.Choices[i] == 0 {
			continue
		}
		old := cur.Choices[i]
		cur.Choices[i] = 0
		if !fails(cur) {
			cur.Choices[i] = old
		}
	}
	return cur, attempts
}
