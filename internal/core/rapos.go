package core

import (
	"math/rand"

	"surw/internal/sched"
)

// RAPOS implements Sen's RAPOS (ASE 2007), the partial-order-aware
// predecessor of POS the paper cites among the stateless samplers. It
// proceeds in rounds: each round randomly selects a maximal pairwise
// non-racing subset of the enabled events and executes it in random order,
// so racing events land in different rounds with fresh coin flips. Like
// POS it counteracts Random Walk's bias on partial-order-equivalent
// interleavings without needing count estimates.
type RAPOS struct {
	rng   *rand.Rand
	queue []sched.ThreadID // remainder of the current round
	cands []sched.ThreadID
	round []sched.ThreadID
}

// NewRAPOS returns a fresh RAPOS scheduler.
func NewRAPOS() *RAPOS { return &RAPOS{} }

// Name implements sched.Algorithm.
func (*RAPOS) Name() string { return "RAPOS" }

// Begin implements sched.Algorithm.
func (a *RAPOS) Begin(_ *sched.ProgramInfo, rng *rand.Rand) {
	a.rng = rng
	a.queue = a.queue[:0]
}

// Next implements sched.Algorithm.
func (a *RAPOS) Next(st *sched.State) sched.ThreadID {
	enabled := st.Enabled()
	// Drain the current round, skipping threads that became disabled or
	// finished since the round was formed.
	for len(a.queue) > 0 {
		tid := a.queue[0]
		a.queue = a.queue[1:]
		for _, e := range enabled {
			if e == tid {
				return tid
			}
		}
	}
	// Form a new round: shuffle the enabled threads, then greedily keep
	// those whose next events do not race with an already-kept one.
	a.cands = append(a.cands[:0], enabled...)
	a.rng.Shuffle(len(a.cands), func(i, j int) { a.cands[i], a.cands[j] = a.cands[j], a.cands[i] })
	a.round = a.round[:0]
	for _, tid := range a.cands {
		ev := st.NextEvent(tid)
		ok := true
		for _, kept := range a.round {
			if st.NextEvent(kept).Conflicts(ev) {
				ok = false
				break
			}
		}
		if ok {
			a.round = append(a.round, tid)
		}
	}
	a.queue = append(a.queue[:0], a.round[1:]...)
	return a.round[0]
}

// Observe implements sched.Algorithm.
func (*RAPOS) Observe(sched.Event, *sched.State) {}
