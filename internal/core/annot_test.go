package core

import (
	"strings"
	"testing"

	"surw/internal/sched"
)

// annotCapture pulls the algorithm annotation at every decision.
type annotCapture struct {
	annots []string
}

func (a *annotCapture) BeginSchedule(string) {}
func (a *annotCapture) Decide(_ sched.Decision, st *sched.State) {
	a.annots = append(a.annots, string(st.AppendAlgAnnotation(nil)))
}
func (a *annotCapture) EndSchedule(*sched.Result) {}

func annotProg(t *sched.Thread) {
	x := t.NewVar("x", 0)
	a := t.Go(func(w *sched.Thread) {
		for i := 0; i < 3; i++ {
			x.Add(w, 1)
		}
	})
	b := t.Go(func(w *sched.Thread) {
		for i := 0; i < 3; i++ {
			x.Add(w, 2)
		}
	})
	t.Join(a)
	t.Join(b)
}

// TestAnnotationFormats pins the rendered annotation shapes: URW exposes
// its remaining-event walk weights, SURW additionally its intended thread,
// and both must render finished threads out of the weight vector by the
// final decisions.
func TestAnnotationFormats(t *testing.T) {
	urw := &annotCapture{}
	sched.Run(annotProg, NewURW(), sched.Options{Base: sched.Base{Seed: 4}, Tracer: urw})
	if len(urw.annots) == 0 {
		t.Fatal("no decisions traced")
	}
	for i, a := range urw.annots {
		if !strings.HasPrefix(a, "w=[T0:") || !strings.HasSuffix(a, "]") {
			t.Fatalf("URW annotation %d = %q, want w=[T0:...]", i, a)
		}
	}
	// All workers are finished at the last decision (the root's final Join
	// grant), so only the root remains in the weight vector.
	last := urw.annots[len(urw.annots)-1]
	if strings.Contains(last, "T1:") || strings.Contains(last, "T2:") {
		t.Fatalf("finished workers still rendered: %q", last)
	}

	// SURW only commits to an intended thread when it has profiled counts.
	info := sched.NewProgramInfo()
	for _, p := range []string{"0", "0.0", "0.1"} {
		info.AddThread(p, parentPath(p))
	}
	for p, c := range map[string]int{"0": 2, "0.0": 3, "0.1": 3} {
		l := info.LID(p)
		info.Events[l] = c
		info.InterestingEvents[l] = c
		info.TotalEvents += c
	}
	surw := &annotCapture{}
	sched.Run(annotProg, NewSURW(), sched.Options{Base: sched.Base{Seed: 4}, Tracer: surw, Info: info})
	sawIntended := false
	for i, a := range surw.annots {
		if !strings.HasPrefix(a, "intended=") || !strings.Contains(a, " Δw=[") {
			t.Fatalf("SURW annotation %d = %q, want intended=... Δw=[...]", i, a)
		}
		if strings.Contains(a, "intended=T") {
			sawIntended = true
		}
	}
	if !sawIntended {
		t.Fatal("SURW never rendered a committed intended thread")
	}
	// By the last decision only the root is live (Δ=Γ, so the root's final
	// Join is itself the intended event): the weight vector must have
	// dropped the finished workers.
	if last := surw.annots[len(surw.annots)-1]; last != "intended=T0 Δw=[T0:1]" {
		t.Fatalf("final SURW annotation %q, want the lone live root", last)
	}
}
