package core

import (
	"math/rand"
	"testing"

	"surw/internal/sched"
)

// --- remWeights -------------------------------------------------------------

// treeInfo builds a profile with root 0 spawning 0.0 and 0.1, and 0.1
// spawning 0.1.0, with the given per-thread counts.
func treeInfo(counts map[string]int) *sched.ProgramInfo {
	pi := sched.NewProgramInfo()
	for _, p := range []string{"0", "0.0", "0.1", "0.1.0"} {
		pi.AddThread(p, parentPath(p))
	}
	for p, c := range counts {
		l := pi.LID(p)
		pi.Events[l] = c
		pi.InterestingEvents[l] = c
		pi.TotalEvents += c
	}
	return pi
}

func parentPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '.' {
			return p[:i]
		}
	}
	return ""
}

func TestRemWeightsSubtreeAccumulation(t *testing.T) {
	info := treeInfo(map[string]int{"0": 2, "0.0": 3, "0.1": 4, "0.1.0": 5})
	var rw remWeights
	rw.reset(info, false)
	// Root carries the whole tree; 0.1 carries its child.
	if rw.w[info.LID("0")] != 2+3+4+5 {
		t.Fatalf("root weight = %d", rw.w[info.LID("0")])
	}
	if rw.w[info.LID("0.1")] != 4+5 {
		t.Fatalf("0.1 weight = %d", rw.w[info.LID("0.1")])
	}
	if rw.w[info.LID("0.0")] != 3 {
		t.Fatalf("0.0 weight = %d", rw.w[info.LID("0.0")])
	}
}

func TestRemWeightsNoCorrection(t *testing.T) {
	info := treeInfo(map[string]int{"0": 2, "0.0": 3, "0.1": 4, "0.1.0": 5})
	rw := remWeights{noCorrect: true}
	rw.reset(info, false)
	if rw.w[info.LID("0")] != 2 || rw.w[info.LID("0.1")] != 4 {
		t.Fatalf("uncorrected weights wrong: %v", rw.w)
	}
}

func TestRemWeightsInterestingCounts(t *testing.T) {
	info := treeInfo(map[string]int{"0": 2, "0.0": 3, "0.1": 4, "0.1.0": 5})
	info.InterestingEvents[info.LID("0.0")] = 1 // differs from Events
	var rw remWeights
	rw.reset(info, true)
	if rw.rem[info.LID("0.0")] != 1 {
		t.Fatalf("interesting count not used: %v", rw.rem)
	}
}

// weightsHarness runs a tiny program far enough to resolve TIDs, then
// hands the state to f.
func weightsHarness(t *testing.T, info *sched.ProgramInfo, f func(st *sched.State, rw *remWeights)) {
	t.Helper()
	var rw remWeights
	rw.reset(info, false)
	probe := &probeAlg{f: func(st *sched.State) { f(st, &rw) }}
	sched.Run(func(th *sched.Thread) {
		v := th.NewVar("v", 0)
		h1 := th.Go(func(w *sched.Thread) { v.Add(w, 1); v.Add(w, 1); v.Add(w, 1) })
		h2 := th.Go(func(w *sched.Thread) {
			g := w.Go(func(g *sched.Thread) { v.Add(g, 1) })
			w.Join(g)
			v.Add(w, 1)
		})
		th.Join(h1)
		th.Join(h2)
	}, probe, sched.Options{Info: info})
}

// probeAlg calls f once at the first multi-enabled decision, then behaves
// as leftmost.
type probeAlg struct {
	f    func(*sched.State)
	done bool
}

func (p *probeAlg) Name() string                         { return "probe" }
func (p *probeAlg) Begin(*sched.ProgramInfo, *rand.Rand) {}
func (p *probeAlg) Observe(sched.Event, *sched.State)    {}
func (p *probeAlg) Next(st *sched.State) sched.ThreadID {
	if !p.done {
		p.done = true
		p.f(st)
	}
	return st.Enabled()[0]
}

func TestRemWeightsRuntimeMapping(t *testing.T) {
	info := treeInfo(map[string]int{"0": 2, "0.0": 3, "0.1": 4, "0.1.0": 5})
	weightsHarness(t, info, func(st *sched.State, rw *remWeights) {
		// TIDs 1 and 2 are the two children (paths 0.0 and 0.1).
		if got := rw.weight(st, 1); got != 3 {
			t.Errorf("weight(0.0) = %v", got)
		}
		// 0.1 still carries its unspawned child here only if 0.1.0 has not
		// spawned; at the first decision it has not.
		if got := rw.weight(st, 2); got != 9 {
			t.Errorf("weight(0.1) = %v (want 4+5)", got)
		}
		rw.onEvent(st, 1)
		if got := rw.weight(st, 1); got != 2 {
			t.Errorf("after onEvent weight = %v", got)
		}
		// Exhausting the count clamps at zero.
		rw.onEvent(st, 1)
		rw.onEvent(st, 1)
		rw.onEvent(st, 1)
		if got := rw.weight(st, 1); got != 0 {
			t.Errorf("clamped weight = %v", got)
		}
	})
}

func TestRemWeightsUnknownThread(t *testing.T) {
	info := treeInfo(map[string]int{"0": 1})
	weightsHarness(t, info, func(st *sched.State, rw *remWeights) {
		// Paths 0.0 / 0.1 were pruned from this info: unknown threads weigh 0
		// and onEvent must not panic.
		pruned := sched.NewProgramInfo()
		pruned.AddThread("0", "")
		rw2 := remWeights{}
		rw2.reset(pruned, false)
		if got := rw2.weight(st, 1); got != 0 {
			t.Errorf("unknown thread weight = %v", got)
		}
		rw2.onEvent(st, 1)
		rw2.onSpawn(st, 1)
	})
}

// --- eventPrio ---------------------------------------------------------------

func TestEventPrioStableUntilNewEvent(t *testing.T) {
	var ep eventPrio
	ep.reset(rand.New(rand.NewSource(1)))
	probe := &probeAlg{f: func(st *sched.State) {
		e := st.Enabled()
		p1 := ep.get(st, e[0])
		p2 := ep.get(st, e[0])
		if p1 != p2 {
			t.Error("priority changed without a new event")
		}
		ep.resample(st, e[0])
		// Resampling with the same rng state gives a fresh draw with
		// probability 1.
		if ep.get(st, e[0]) == p1 {
			t.Error("resample did not change the priority")
		}
	}}
	sched.Run(func(th *sched.Thread) {
		v := th.NewVar("v", 0)
		h := th.Go(func(w *sched.Thread) { v.Add(w, 1) })
		v.Add(th, 1)
		th.Join(h)
	}, probe, sched.Options{})
}

// --- PCT ---------------------------------------------------------------------

func TestPCTDeterministicWithoutChangePoints(t *testing.T) {
	// Depth 1 => no change points: PCT degenerates to a fixed priority
	// order, so two schedules with the same seed AND the same priorities
	// are identical, and the highest-priority thread runs first.
	prog := bitshift(3)
	info := bitshiftInfo(3, nil)
	a := sched.Run(prog, NewPCT(1), sched.Options{Base: sched.Base{Seed: 5}, Info: info})
	b := sched.Run(prog, NewPCT(1), sched.Options{Base: sched.Base{Seed: 5}, Info: info})
	if a.Behavior != b.Behavior {
		t.Fatal("PCT-1 with equal seeds diverged")
	}
	// With no change points only two behaviours are possible: A fully
	// before B or B fully before A.
	seen := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		r := sched.Run(prog, NewPCT(1), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		seen[r.Behavior] = true
	}
	if len(seen) != 2 {
		t.Fatalf("PCT-1 produced %d behaviours, want exactly 2 (block orders)", len(seen))
	}
}

func TestPCTChangePointCausesPreemption(t *testing.T) {
	// With depth >> trace length, change points fire constantly, so more
	// than the two block-order behaviours must appear.
	prog := bitshift(3)
	info := bitshiftInfo(3, nil)
	seen := map[string]bool{}
	for seed := int64(0); seed < 60; seed++ {
		r := sched.Run(prog, NewPCT(8), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		seen[r.Behavior] = true
	}
	if len(seen) <= 2 {
		t.Fatalf("PCT-8 produced only %d behaviours; change points not firing", len(seen))
	}
}

func TestPCTNameAndConstruction(t *testing.T) {
	if NewPCT(3).Name() != "PCT-3" || NewPCT(10).Name() != "PCT-10" || NewPCT(7).Name() != "PCT-7" {
		t.Fatal("PCT names wrong")
	}
	if NewPCT(0).Depth != 1 {
		t.Fatal("depth floor wrong")
	}
}

// --- POS ---------------------------------------------------------------------

func TestPOSResamplingChangesOutcomes(t *testing.T) {
	// On the all-racing bitshift program POS degrades to ~RW (paper §2.1);
	// sanity: it remains complete and skewed relative to URW.
	prog := bitshift(4)
	info := bitshiftInfo(4, nil)
	pos := map[string]int{}
	for seed := int64(0); seed < 4000; seed++ {
		r := sched.Run(prog, NewPOS(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		pos[r.Behavior]++
	}
	urw := map[string]int{}
	for seed := int64(0); seed < 4000; seed++ {
		r := sched.Run(prog, NewURW(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		urw[r.Behavior]++
	}
	xPOS := chiSquare(pos, binom(8, 4), 4000)
	xURW := chiSquare(urw, binom(8, 4), 4000)
	if xPOS < 3*xURW {
		t.Fatalf("POS chi2 %.1f should be far above URW %.1f on the all-racing program", xPOS, xURW)
	}
}

// --- SURW fallback -----------------------------------------------------------

// TestSURWFallbackWhenIntendedBlocked forces the §3.5 critical-section
// hazard: Δ contains lock-protected accesses, and the intended thread can
// be stuck waiting for a lock held by a blocked rival. SURW must re-select
// and make progress rather than livelock.
func TestSURWFallbackWhenIntendedBlocked(t *testing.T) {
	prog := func(th *sched.Thread) {
		m := th.NewMutex("m")
		x := th.NewVar("x", 0)
		body := func(w *sched.Thread) {
			for i := 0; i < 3; i++ {
				m.Lock(w)
				x.Add(w, 1) // interesting, inside the critical section
				x.Add(w, 1)
				m.Unlock(w)
			}
		}
		h1, h2, h3 := th.Go(body), th.Go(body), th.Go(body)
		th.JoinAll(h1, h2, h3)
	}
	info := sched.NewProgramInfo()
	info.AddThread("0", "")
	for i, p := range []string{"0.0", "0.1", "0.2"} {
		l := info.AddThread(p, "0")
		_ = i
		info.Events[l] = 12
		info.InterestingEvents[l] = 6
	}
	info.Events[info.LID("0")] = 3
	info.TotalEvents = 39
	info.Interesting = func(ev sched.Event) bool { return ev.Kind.IsMemAccess() }
	for seed := int64(0); seed < 50; seed++ {
		r := sched.Run(prog, NewSURW(), sched.Options{Base: sched.Base{Seed: seed, MaxSteps: 5000}, Info: info})
		if r.Buggy() || r.Truncated {
			t.Fatalf("seed %d: failure=%v truncated=%v (fallback livelocked?)", seed, r.Failure, r.Truncated)
		}
	}
}

func TestSURWNamesAndKnobs(t *testing.T) {
	if NewSURW().Name() != "SURW" || NewNonUniform().Name() != "N-U" || NewNonSelective().Name() != "N-S" {
		t.Fatal("names wrong")
	}
	s := NewSURW()
	s.PickUniform = true
	s.NoSpawnCorrection = true
	info := bitshiftInfo(3, nil)
	for seed := int64(0); seed < 20; seed++ {
		r := sched.Run(bitshift(3), s, sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		if r.Buggy() {
			t.Fatal(r.Failure)
		}
	}
}

// TestSURWHandoffTelescopes checks the §3.5/§4.2 commitment math: with one
// checker spawned last after n setters (creation costing main-thread
// events), the checker's single interesting event goes first in ~1/(n+1)
// of schedules — not exponentially rarely.
func TestSURWHandoffTelescopes(t *testing.T) {
	const setters = 9
	prog := func(th *sched.Thread) {
		b := th.NewVar("b", 0)
		first := th.NewVar("first", -1)
		ctl := th.NewVar("ctl", 0)
		var hs []*sched.Handle
		for i := 0; i < setters; i++ {
			hs = append(hs, th.Go(func(w *sched.Thread) {
				if b.Add(w, 1) == 1 {
					first.Store(w, 0) // a setter went first
				}
			}))
			ctl.Add(th, 1)
		}
		hs = append(hs, th.Go(func(w *sched.Thread) {
			if b.Add(w, 1) == 1 {
				first.Store(w, 1) // the checker went first
			}
		}))
		th.JoinAll(hs...)
		if first.Peek() == 1 {
			th.SetBehavior("checker-first")
		} else {
			th.SetBehavior("setter-first")
		}
	}
	info := sched.NewProgramInfo()
	root := info.AddThread("0", "")
	info.Events[root] = setters + 2
	for i := 0; i <= setters; i++ {
		l := info.AddThread("0."+itoa(i), "0")
		info.Events[l] = 2
		info.InterestingEvents[l] = 1
	}
	info.TotalEvents = setters + 2 + 2*(setters+1)
	info.Interesting = func(ev sched.Event) bool {
		return ev.Kind.IsMemAccess() && ev.ObjHash == hashOf("b")
	}
	hits := 0
	const n = 4000
	for seed := int64(0); seed < n; seed++ {
		r := sched.Run(prog, NewSURW(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		if r.Behavior == "checker-first" {
			hits++
		}
	}
	// Expected 1/10 = 400; allow generous slack (5 sigma ~ +-95).
	if hits < 280 || hits > 520 {
		t.Fatalf("checker-first in %d/%d schedules; want ~%d (telescoping broken)", hits, n, n/(setters+1))
	}
}

// --- RAPOS ---------------------------------------------------------------

func TestRAPOSRunsCleanPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := sched.Run(bitshift(4), NewRAPOS(), sched.Options{Base: sched.Base{Seed: seed}})
		if r.Buggy() || r.Truncated {
			t.Fatalf("seed %d: %v", seed, r.Failure)
		}
	}
}

func TestRAPOSFindsRacingBug(t *testing.T) {
	lostUpdate := func(th *sched.Thread) {
		c := th.NewVar("c", 0)
		inc := func(w *sched.Thread) { c.Store(w, c.Load(w)+1) }
		h1, h2 := th.Go(inc), th.Go(inc)
		th.JoinAll(h1, h2)
		th.Assert(c.Peek() == 2, "lost-update")
	}
	for seed := int64(0); seed < 500; seed++ {
		r := sched.Run(lostUpdate, NewRAPOS(), sched.Options{Base: sched.Base{Seed: seed}})
		if r.Buggy() {
			return
		}
	}
	t.Fatal("RAPOS never found the lost update in 500 schedules")
}

// TestRAPOSRoundsLoseInterleavings documents RAPOS's known coverage gap
// (one reason POS superseded it): once a round commits a set of pairwise
// non-racing events, an event that becomes enabled mid-round cannot
// interleave before them, so orderBug's buggy interleaving — which needs
// the checker's second read squeezed before the setter's second write
// after both were co-scheduled — is unreachable.
func TestRAPOSRoundsLoseInterleavings(t *testing.T) {
	for seed := int64(0); seed < 2000; seed++ {
		if r := sched.Run(orderBug, NewRAPOS(), sched.Options{Base: sched.Base{Seed: seed}}); r.Buggy() {
			t.Fatalf("seed %d: RAPOS reached an interleaving its rounds should exclude", seed)
		}
	}
}

func TestRAPOSRegistryAndName(t *testing.T) {
	a, err := New("RAPOS")
	if err != nil || a.Name() != "RAPOS" {
		t.Fatalf("registry: %v %v", a, err)
	}
}

func TestRAPOSHandlesBlocking(t *testing.T) {
	prog := func(th *sched.Thread) {
		m := th.NewMutex("m")
		x := th.NewVar("x", 0)
		body := func(w *sched.Thread) {
			m.Lock(w)
			x.Add(w, 1)
			m.Unlock(w)
		}
		h1, h2 := th.Go(body), th.Go(body)
		th.JoinAll(h1, h2)
	}
	for seed := int64(0); seed < 30; seed++ {
		r := sched.Run(prog, NewRAPOS(), sched.Options{Base: sched.Base{Seed: seed}})
		if r.Buggy() || r.Truncated {
			t.Fatalf("seed %d: %v", seed, r.Failure)
		}
	}
}

// --- DB (delay-bounded) ----------------------------------------------------

func TestDBZeroDelaysIsRoundRobin(t *testing.T) {
	// With no delays, DB never preempts: only block-order behaviours.
	prog := bitshift(3)
	info := bitshiftInfo(3, nil)
	seen := map[string]bool{}
	for seed := int64(0); seed < 30; seed++ {
		r := sched.Run(prog, NewDB(0), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		if r.Buggy() {
			t.Fatal(r.Failure)
		}
		seen[r.Behavior] = true
	}
	if len(seen) != 1 {
		t.Fatalf("DB-0 produced %d behaviours, want 1 (deterministic round-robin)", len(seen))
	}
}

func TestDBDelaysCauseSwitches(t *testing.T) {
	prog := bitshift(3)
	info := bitshiftInfo(3, nil)
	seen := map[string]bool{}
	for seed := int64(0); seed < 200; seed++ {
		r := sched.Run(prog, NewDB(3), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		seen[r.Behavior] = true
	}
	if len(seen) < 4 {
		t.Fatalf("DB-3 produced only %d behaviours; delays not firing", len(seen))
	}
}

func TestDBFindsShallowBug(t *testing.T) {
	info := sched.NewProgramInfo()
	info.AddThread("0", "")
	info.TotalEvents = 10
	for seed := int64(0); seed < 2000; seed++ {
		if r := sched.Run(orderBug, NewDB(2), sched.Options{Base: sched.Base{Seed: seed}, Info: info}); r.Buggy() {
			return
		}
	}
	t.Fatal("DB-2 never found the depth-2 bug")
}

func TestDBRegistry(t *testing.T) {
	a, err := New("DB-4")
	if err != nil || a.Name() != "DB-4" {
		t.Fatalf("registry: %v %v", a, err)
	}
	if _, err := New("DB-x"); err == nil {
		t.Fatal("bad delay bound accepted")
	}
	if NewDB(-3).Delays != 0 {
		t.Fatal("negative delays not clamped")
	}
}

func TestDBHandlesBlocking(t *testing.T) {
	prog := func(th *sched.Thread) {
		m := th.NewMutex("m")
		x := th.NewVar("x", 0)
		body := func(w *sched.Thread) {
			m.Lock(w)
			x.Add(w, 1)
			m.Unlock(w)
		}
		h1, h2 := th.Go(body), th.Go(body)
		th.JoinAll(h1, h2)
	}
	for seed := int64(0); seed < 30; seed++ {
		r := sched.Run(prog, NewDB(5), sched.Options{Base: sched.Base{Seed: seed}})
		if r.Buggy() || r.Truncated {
			t.Fatalf("seed %d: %v", seed, r.Failure)
		}
	}
}

// --- RandomWalk source fast path --------------------------------------------

// TestRandomWalkSourceDrawIdentity holds the inlined NextIndex draw (via
// BeginSource) bit-identical to rng.Intn over the full range of enabled
// counts the scheduler can present, including power-of-two sizes and sizes
// that exercise the rejection threshold.
func TestRandomWalkSourceDrawIdentity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		srcA := rand.NewSource(seed)
		fast := NewRandomWalk()
		fast.Begin(nil, rand.New(srcA))
		fast.BeginSource(srcA)

		slow := rand.New(rand.NewSource(seed))

		sizes := make([]int, 0, 4096)
		szRng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 4096; i++ {
			sizes = append(sizes, 1+szRng.Intn(64))
		}
		for i, n := range sizes {
			got, want := fast.NextIndex(n), slow.Intn(n)
			if got != want {
				t.Fatalf("seed %d draw %d (n=%d): fast=%d slow=%d", seed, i, n, got, want)
			}
		}
	}
}

// TestRandomWalkBeginDropsSource holds that a bare Begin (no BeginSource,
// as a caller driving the algorithm directly would do) falls back to the
// rng and never touches a stale source from an earlier schedule.
func TestRandomWalkBeginDropsSource(t *testing.T) {
	a := NewRandomWalk()
	stale := rand.NewSource(7)
	a.Begin(nil, rand.New(rand.NewSource(1)))
	a.BeginSource(stale)
	a.Begin(nil, rand.New(rand.NewSource(2)))
	want := rand.New(rand.NewSource(2)).Intn(21)
	if got := a.NextIndex(21); got != want {
		t.Fatalf("after re-Begin: got %d want %d (stale source used?)", got, want)
	}
}
