package core

import (
	"math/rand"

	"surw/internal/sched"
)

// PCT implements Probabilistic Concurrency Testing with depth parameter d
// (Burckhardt et al., ASPLOS 2010). Each thread receives a random base
// priority; the highest-priority enabled thread always runs. d-1 change
// points are sampled uniformly from the expected schedule length n; when
// the i-th change point is reached, the running thread's priority drops
// below every base priority (to the i-th "low" slot). For a bug of depth d,
// PCT triggers it with probability >= 1/(k * n^(d-1)).
//
// PCT needs an estimate of n; it reads ProgramInfo.TotalEvents and falls
// back to DefaultLengthGuess when no profile is supplied.
type PCT struct {
	Depth int

	rng      *rand.Rand
	prios    []float64 // by TID; base in (1,2), change slots negative
	changeAt []int     // sorted step indices of priority change points
	nextCP   int       // index into changeAt
	steps    int
}

// DefaultLengthGuess is PCT's schedule-length estimate without a profile.
const DefaultLengthGuess = 1000

// NewPCT returns a PCT scheduler with the given depth (d >= 1).
func NewPCT(depth int) *PCT {
	if depth < 1 {
		depth = 1
	}
	return &PCT{Depth: depth}
}

// Name implements sched.Algorithm.
func (a *PCT) Name() string {
	if a.Depth == 3 {
		return "PCT-3"
	}
	if a.Depth == 10 {
		return "PCT-10"
	}
	return "PCT-" + itoa(a.Depth)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Begin implements sched.Algorithm.
func (a *PCT) Begin(info *sched.ProgramInfo, rng *rand.Rand) {
	a.rng = rng
	a.prios = a.prios[:0]
	a.steps = 0
	a.nextCP = 0
	n := DefaultLengthGuess
	if info != nil && info.TotalEvents > 0 {
		n = info.TotalEvents
	}
	a.changeAt = a.changeAt[:0]
	for i := 0; i < a.Depth-1; i++ {
		a.changeAt = append(a.changeAt, rng.Intn(n)+1)
	}
	sortInts(a.changeAt)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func (a *PCT) prio(tid sched.ThreadID) float64 {
	for len(a.prios) <= tid {
		// Base priorities live in (1,2); Float64 draws make them distinct
		// with probability 1 and keep new threads randomly ranked.
		a.prios = append(a.prios, 1+a.rng.Float64())
	}
	return a.prios[tid]
}

// Next implements sched.Algorithm: run the highest-priority enabled thread.
func (a *PCT) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	best := e[0]
	bestP := a.prio(best)
	for _, tid := range e[1:] {
		if p := a.prio(tid); p > bestP {
			best, bestP = tid, p
		}
	}
	return best
}

// Observe implements sched.Algorithm: count executed events and apply
// priority change points to the thread that just ran.
func (a *PCT) Observe(ev sched.Event, _ *sched.State) {
	a.steps++
	for a.nextCP < len(a.changeAt) && a.steps >= a.changeAt[a.nextCP] {
		a.prio(ev.TID) // ensure slot exists
		// The i-th change point assigns the i-th low slot: d-i in the
		// paper's integer scheme; any strictly decreasing negative sequence
		// below all base priorities preserves the semantics.
		a.prios[ev.TID] = -float64(a.nextCP + 1)
		a.nextCP++
	}
}
