// Package core implements the randomized controlled-concurrency-testing
// algorithms from "Selectively Uniform Concurrency Testing" (ASPLOS 2025)
// and its baselines, behind the sched.Algorithm interface:
//
//   - RandomWalk: uniform choice among enabled threads at each step.
//   - PCT(d): Probabilistic Concurrency Testing (Burckhardt et al.),
//     priority-based with d-1 random priority change points.
//   - POS: Partial Order Sampling (Yuan et al.), random priorities per
//     event with resampling of racing events.
//   - RAPOS (Sen), POS's predecessor: rounds of pairwise non-racing
//     event subsets executed in random order.
//   - DB(d): randomized delay-bounded scheduling (Emmi et al.):
//     round-robin with d random delay points.
//   - URW (Algorithm 1): weighted random walk where each thread's weight is
//     the estimated number of its remaining events, with the §3.5
//     thread-creation correction (a parent carries the weight of its
//     unspawned descendants). URW samples interleavings uniformly for
//     programs without blocking synchronization.
//   - SURW (Algorithm 2): the paper's contribution. Given a subset Δ of
//     interesting events and per-thread Δ-counts, SURW eagerly commits to an
//     intended thread for the next interesting event via URW weights,
//     blocks other threads about to perform interesting events, and leaves
//     all remaining ordering to a pluggable pickFrom policy. This yields
//     Δ-uniformity while preserving Γ-completeness.
//   - NonUniform (N-U ablation): SURW with uniform (unweighted) choice of
//     the intended thread.
//   - NonSelective (N-S ablation): URW applied to all events (Δ = Γ).
//
// Every algorithm is stateless across schedules: Begin re-seeds it and
// resets all per-schedule state.
package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"surw/internal/sched"
)

// New constructs an algorithm from its report name: "RW", "PCT-<d>", "POS",
// "URW", "SURW", "N-U" (non-uniform ablation) or "N-S" (non-selective
// ablation). Names are case-insensitive.
func New(name string) (sched.Algorithm, error) {
	n := strings.ToUpper(strings.TrimSpace(name))
	switch {
	case n == "RW" || n == "RANDOMWALK" || n == "RANDOM":
		return NewRandomWalk(), nil
	case strings.HasPrefix(n, "PCT-"):
		d, err := strconv.Atoi(n[len("PCT-"):])
		if err != nil || d < 1 {
			return nil, fmt.Errorf("core: bad PCT depth in %q", name)
		}
		return NewPCT(d), nil
	case n == "PCT":
		return NewPCT(3), nil
	case n == "POS":
		return NewPOS(), nil
	case n == "RAPOS":
		return NewRAPOS(), nil
	case strings.HasPrefix(n, "DB-"):
		d, err := strconv.Atoi(n[len("DB-"):])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("core: bad delay bound in %q", name)
		}
		return NewDB(d), nil
	case n == "URW":
		return NewURW(), nil
	case n == "SURW":
		return NewSURW(), nil
	case n == "N-U" || n == "NU":
		return NewNonUniform(), nil
	case n == "N-S" || n == "NS":
		return NewNonSelective(), nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}

// AllNames lists the algorithm names used across the paper's evaluation, in
// the column order of Table 4.
func AllNames() []string {
	return []string{"SURW", "PCT-3", "PCT-10", "POS", "RW", "N-U", "N-S"}
}

// weightedIndex picks an index with probability proportional to weights[i].
// Non-positive weights never win unless every weight is non-positive, in
// which case the choice is uniform.
func weightedIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: return the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// lidMap lazily resolves runtime TIDs to the profile's logical thread IDs.
type lidMap struct {
	info *sched.ProgramInfo
	lids []int
}

func (m *lidMap) reset(info *sched.ProgramInfo) {
	m.info = info
	m.lids = m.lids[:0]
}

func (m *lidMap) lid(st *sched.State, tid sched.ThreadID) int {
	for len(m.lids) <= tid {
		t := len(m.lids)
		l := -1
		if m.info != nil {
			l = m.info.LID(st.Path(t))
		}
		m.lids = append(m.lids, l)
	}
	return m.lids[tid]
}

// eventPrio assigns one fresh random priority to each thread's *current*
// next event (re-rolled whenever the thread publishes a new event). It is
// the paper's default pickFrom implementation for SURW and the backbone of
// POS.
type eventPrio struct {
	rng  *rand.Rand
	seq  []int
	prio []float64
}

func (p *eventPrio) reset(rng *rand.Rand) {
	p.rng = rng
	p.seq = p.seq[:0]
	p.prio = p.prio[:0]
}

func (p *eventPrio) grow(tid sched.ThreadID) {
	for len(p.seq) <= tid {
		p.seq = append(p.seq, -1)
		p.prio = append(p.prio, 0)
	}
}

// get returns the priority of tid's current next event.
func (p *eventPrio) get(st *sched.State, tid sched.ThreadID) float64 {
	p.grow(tid)
	if s := st.NextEvent(tid).Seq; p.seq[tid] != s {
		p.seq[tid] = s
		p.prio[tid] = p.rng.Float64()
	}
	return p.prio[tid]
}

// resample forces a fresh priority for tid's current next event.
func (p *eventPrio) resample(st *sched.State, tid sched.ThreadID) {
	p.grow(tid)
	p.seq[tid] = st.NextEvent(tid).Seq
	p.prio[tid] = p.rng.Float64()
}

// maxPrio returns the candidate with the highest event priority.
func (p *eventPrio) maxPrio(st *sched.State, cands []sched.ThreadID) sched.ThreadID {
	best := cands[0]
	bestP := p.get(st, best)
	for _, tid := range cands[1:] {
		if q := p.get(st, tid); q > bestP {
			best, bestP = tid, q
		}
	}
	return best
}
