package core

import (
	"math/rand"

	"surw/internal/sched"
)

// DB implements randomized delay-bounded scheduling (Emmi, Qadeer,
// Rakamarić — POPL 2011; the randomized instantiation used in Thomson et
// al.'s empirical study the paper builds its benchmark methodology on).
// The scheduler runs threads round-robin, never preempting voluntarily;
// at d randomly chosen event indices it "delays" the running thread —
// sends it to the back of the round — forcing one context switch. Bugs
// reachable with few delays are found quickly; like PCT it needs a trace
// length estimate for placing its delay points.
type DB struct {
	Delays int

	rng     *rand.Rand
	delayAt []int
	nextDP  int
	steps   int
	current sched.ThreadID
	demoted map[sched.ThreadID]int // round-robin demotion stamps
	demotes int
}

// NewDB returns a delay-bounded scheduler with d delays per schedule.
func NewDB(d int) *DB {
	if d < 0 {
		d = 0
	}
	return &DB{Delays: d}
}

// Name implements sched.Algorithm.
func (a *DB) Name() string { return "DB-" + itoa(a.Delays) }

// Begin implements sched.Algorithm.
func (a *DB) Begin(info *sched.ProgramInfo, rng *rand.Rand) {
	a.rng = rng
	a.steps = 0
	a.nextDP = 0
	a.current = -1
	a.demoted = make(map[sched.ThreadID]int)
	a.demotes = 0
	n := DefaultLengthGuess
	if info != nil && info.TotalEvents > 0 {
		n = info.TotalEvents
	}
	a.delayAt = a.delayAt[:0]
	for i := 0; i < a.Delays; i++ {
		a.delayAt = append(a.delayAt, rng.Intn(n)+1)
	}
	sortInts(a.delayAt)
}

// Next implements sched.Algorithm: keep running the current thread; when
// it blocks or finishes (or was delayed), take the enabled thread with the
// oldest demotion stamp, lowest TID first.
func (a *DB) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	for _, tid := range e {
		if tid == a.current {
			return tid
		}
	}
	best := e[0]
	for _, tid := range e[1:] {
		if a.demoted[tid] < a.demoted[best] {
			best = tid
		}
	}
	return best
}

// Observe implements sched.Algorithm: count events and apply delay points
// by demoting the running thread to the back of the round.
func (a *DB) Observe(ev sched.Event, _ *sched.State) {
	a.current = ev.TID
	a.steps++
	for a.nextDP < len(a.delayAt) && a.steps >= a.delayAt[a.nextDP] {
		a.demotes++
		a.demoted[ev.TID] = a.demotes
		a.current = -1 // force a switch at the next decision
		a.nextDP++
	}
}
