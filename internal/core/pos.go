package core

import (
	"math/rand"

	"surw/internal/sched"
)

// POS implements Partial Order Sampling (Yuan, Yang, Gu — CAV 2018) in its
// basic priority-based form: every event receives an independent random
// priority when it becomes its thread's next event; the enabled event with
// the highest priority executes; and after an event executes, every enabled
// event that races with it has its priority resampled. Racing events are
// thereby ordered by a fresh coin flip, which removes the bias Random Walk
// exhibits on partial-order-equivalent interleavings. When every pair of
// events races (as in Figure 1 of the SURW paper), the resampling is
// universal and POS degrades to Random Walk.
type POS struct {
	prio eventPrio
}

// NewPOS returns a fresh POS scheduler.
func NewPOS() *POS { return &POS{} }

// Name implements sched.Algorithm.
func (*POS) Name() string { return "POS" }

// Begin implements sched.Algorithm.
func (a *POS) Begin(_ *sched.ProgramInfo, rng *rand.Rand) { a.prio.reset(rng) }

// Next implements sched.Algorithm.
func (a *POS) Next(st *sched.State) sched.ThreadID {
	return a.prio.maxPrio(st, st.Enabled())
}

// Observe implements sched.Algorithm: resample priorities of enabled events
// racing with the event that just executed.
func (a *POS) Observe(ev sched.Event, st *sched.State) {
	for _, tid := range st.Enabled() {
		if st.NextEvent(tid).Conflicts(ev) {
			a.prio.resample(st, tid)
		}
	}
}
