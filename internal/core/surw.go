package core

import (
	"math/rand"
	"strconv"

	"surw/internal/sched"
)

// SURW is Algorithm 2: Selectively Uniform Random Walk.
//
// Given a subset Δ of interesting events (ProgramInfo.Interesting) with
// per-thread count estimates, SURW eagerly selects — by URW-weighted random
// choice, potentially before the event is even enabled — the thread
// intended to execute the next interesting event. Any other thread about to
// execute an interesting event is blocked until the intended one has run
// its event, at which point the counts shrink, a new intended thread is
// drawn, and the blocked set clears. All non-interesting ordering decisions
// are delegated to a pickFrom policy (by default: fresh random priority per
// event, highest wins), which by construction cannot affect the Δ-projected
// interleaving distribution. This yields Δ-uniformity and, because pickFrom
// gives every interleaving positive probability, Γ-completeness.
//
// The §3.5 refinements are included: a parent thread carries the Δ-weight
// of its unspawned descendants, and the intended thread is re-selected
// after every spawn.
//
// If the counts are exhausted (estimation error), SURW degrades gracefully:
// it stops constraining interesting events and behaves like pickFrom alone,
// preserving completeness (§3.6, §7).
type SURW struct {
	name    string
	uniform bool // false for the N-U ablation (unweighted intended choice)
	// PickUniform switches pickFrom from random event priorities to a
	// uniform choice among candidates at each step (an ablation knob; the
	// default matches the paper's implementation).
	PickUniform bool
	// NoSpawnCorrection disables the §3.5 thread-creation weight
	// correction (ablation knob; off in normal use).
	NoSpawnCorrection bool

	rng         *rand.Rand
	rw          remWeights
	pick        eventPrio
	interesting func(sched.Event) bool
	intended    sched.ThreadID // -1 when unconstrained
	havePicked  bool
	blocked     []bool
	cands       []sched.ThreadID
	wbuf        []float64
}

// NewSURW returns the full SURW scheduler.
func NewSURW() *SURW { return &SURW{name: "SURW", uniform: true} }

// NewNonUniform returns the paper's N-U ablation: SURW's selectivity with a
// naive (unweighted) random choice of the intended thread.
func NewNonUniform() *SURW { return &SURW{name: "N-U", uniform: false} }

// Name implements sched.Algorithm.
func (a *SURW) Name() string { return a.name }

// Begin implements sched.Algorithm.
func (a *SURW) Begin(info *sched.ProgramInfo, rng *rand.Rand) {
	a.rng = rng
	a.rw.noCorrect = a.NoSpawnCorrection
	a.rw.reset(info, true)
	a.pick.reset(rng)
	a.interesting = nil
	if info != nil {
		a.interesting = info.Interesting
	}
	a.intended = -1
	a.havePicked = false
	a.blocked = a.blocked[:0]
}

func (a *SURW) isInteresting(ev sched.Event) bool {
	if a.interesting == nil {
		return true // Δ = Γ
	}
	return a.interesting(ev)
}

func (a *SURW) isBlocked(tid sched.ThreadID) bool {
	return tid < len(a.blocked) && a.blocked[tid]
}

func (a *SURW) block(tid sched.ThreadID) {
	for len(a.blocked) <= tid {
		a.blocked = append(a.blocked, false)
	}
	a.blocked[tid] = true
}

func (a *SURW) clearBlocked() {
	for i := range a.blocked {
		a.blocked[i] = false
	}
}

// reselect draws a new intended thread among live threads with remaining
// interesting weight. A nil pool means "all live threads"; fallback paths
// pass the enabled set instead.
func (a *SURW) reselect(st *sched.State, pool []sched.ThreadID) {
	a.clearBlocked()
	a.cands = a.cands[:0]
	a.wbuf = a.wbuf[:0]
	if pool == nil {
		for tid := 0; tid < st.NumThreads(); tid++ {
			if !st.Finished(tid) {
				a.cands = append(a.cands, tid)
			}
		}
	} else {
		a.cands = append(a.cands, pool...)
	}
	total := 0.0
	for _, tid := range a.cands {
		w := a.rw.weight(st, tid)
		if !a.uniform && w > 0 {
			w = 1 // N-U: unweighted choice among threads with events left
		}
		a.wbuf = append(a.wbuf, w)
		total += w
	}
	if len(a.cands) == 0 || total <= 0 {
		a.intended = -1
		return
	}
	a.intended = a.cands[weightedIndex(a.rng, a.wbuf)]
}

// Next implements sched.Algorithm (Algorithm 2's main loop).
func (a *SURW) Next(st *sched.State) sched.ThreadID {
	if !a.havePicked {
		a.havePicked = true
		a.reselect(st, nil)
	}
	for {
		enabled := st.Enabled()
		a.cands = a.cands[:0]
		for _, tid := range enabled {
			if !a.isBlocked(tid) {
				a.cands = append(a.cands, tid)
			}
		}
		if len(a.cands) == 0 {
			// Every enabled thread is poised on an unintended interesting
			// event while the intended thread is disabled (e.g. stuck on a
			// lock, §3.5). Re-draw the intended thread among the enabled
			// ones to preserve progress and completeness.
			a.reselect(st, enabled)
			if a.intended == -1 {
				return enabled[a.rng.Intn(len(enabled))]
			}
			return a.intended
		}
		var t sched.ThreadID
		if a.PickUniform {
			t = a.cands[a.rng.Intn(len(a.cands))]
		} else {
			t = a.pick.maxPrio(st, a.cands)
		}
		if a.intended != -1 && t != a.intended && a.isInteresting(st.NextEvent(t)) {
			a.block(t)
			continue
		}
		return t
	}
}

// Observe implements sched.Algorithm: consume counts on interesting events,
// re-draw the intended thread after each one, and recover if the intended
// thread exits.
func (a *SURW) Observe(ev sched.Event, st *sched.State) {
	if a.isInteresting(ev) {
		a.rw.onEvent(st, ev.TID)
		if a.havePicked {
			a.reselect(st, nil)
		}
	}
	if a.intended != -1 && st.Finished(a.intended) {
		a.reselect(st, nil)
	}
}

// AppendAnnotation implements sched.Annotator: the currently intended
// thread for the next Δ event and the per-live-thread remaining Δ-weights
// the intended choice is drawn from.
func (a *SURW) AppendAnnotation(buf []byte, st *sched.State) []byte {
	buf = append(buf, "intended="...)
	if !a.havePicked || a.intended == -1 {
		buf = append(buf, '-')
	} else {
		buf = append(buf, 'T')
		buf = strconv.AppendInt(buf, int64(a.intended), 10)
	}
	return appendWeights(append(buf, " Δw="...), st, &a.rw)
}

// ObserveSpawn implements sched.SpawnObserver: apply the §3.5 spawn weight
// correction and, when the spawner *is* the intended thread, re-decide
// between keeping the parent's side and handing the commitment to the new
// child, in proportion to their updated weights. Only this conditional
// handoff preserves the eager commitment's measure: a parent carrying k
// unspawned descendants hands each off with exactly its n_i share
// (telescoping to the paper's 1/100 checker probability in reorder_100),
// whereas an unconditional re-draw would dilute commitments made at
// earlier spawns.
func (a *SURW) ObserveSpawn(parent, child sched.ThreadID, st *sched.State) {
	childW := a.rw.weight(st, child)
	a.rw.onSpawn(st, child)
	if !a.havePicked || a.intended != parent {
		return
	}
	parentW := a.rw.weight(st, parent)
	if !a.uniform { // N-U: unweighted handoff among sides with events left
		if childW > 0 {
			childW = 1
		}
		if parentW > 0 {
			parentW = 1
		}
	}
	total := childW + parentW
	if total <= 0 {
		a.reselect(st, nil)
		return
	}
	if a.rng.Float64()*total < childW {
		a.intended = child
		a.clearBlocked()
	}
}
