package core

import (
	"math/rand"
	"strconv"

	"surw/internal/sched"
)

// remWeights maintains, per logical thread, the estimated number of
// remaining (interesting) events, plus the §3.5 thread-creation correction:
// the weight of a live thread includes the remaining events of all of its
// still-unspawned descendants, so interleavings that schedule child-thread
// events early are not under-sampled.
type remWeights struct {
	lm        lidMap
	rem       []int // remaining events by LID
	w         []int // rem + unspawned-descendant remaining, by LID
	noCorrect bool  // ablation: disable the §3.5 correction
}

// reset reloads the counts. interesting selects ProgramInfo's Δ counts
// instead of total counts.
func (rw *remWeights) reset(info *sched.ProgramInfo, interesting bool) {
	rw.lm.reset(info)
	rw.rem = rw.rem[:0]
	rw.w = rw.w[:0]
	if info == nil {
		return
	}
	src := info.Events
	if interesting {
		src = info.InterestingEvents
	}
	rw.rem = append(rw.rem, src...)
	rw.w = append(rw.w, src...)
	if rw.noCorrect {
		return
	}
	// Profiles register parents before children, so walking LIDs from the
	// highest down accumulates full subtree weights.
	for l := len(rw.w) - 1; l >= 0; l-- {
		for _, c := range info.Children[l] {
			rw.w[l] += rw.w[c]
		}
	}
}

// lid resolves a runtime thread to its logical ID (-1 if unprofiled).
func (rw *remWeights) lid(st *sched.State, tid sched.ThreadID) int {
	return rw.lm.lid(st, tid)
}

// weight returns the sampling weight of a live thread. Unprofiled threads
// weigh zero; callers fall back to uniform choice when all weights vanish.
func (rw *remWeights) weight(st *sched.State, tid sched.ThreadID) float64 {
	l := rw.lid(st, tid)
	if l < 0 || l >= len(rw.w) {
		return 0
	}
	return float64(rw.w[l])
}

// onEvent records that thread tid executed one counted event.
func (rw *remWeights) onEvent(st *sched.State, tid sched.ThreadID) {
	l := rw.lid(st, tid)
	if l < 0 || l >= len(rw.rem) {
		return
	}
	if rw.rem[l] > 0 {
		rw.rem[l]--
		if rw.w[l] > 0 {
			rw.w[l]--
		}
	}
}

// onSpawn moves a freshly spawned child's subtree weight off its ancestors.
func (rw *remWeights) onSpawn(st *sched.State, childTID sched.ThreadID) {
	if rw.noCorrect {
		return
	}
	c := rw.lid(st, childTID)
	if c < 0 || c >= len(rw.w) {
		return
	}
	info := rw.lm.info
	sub := rw.w[c]
	for a := info.Parent[c]; a >= 0; a = info.Parent[a] {
		rw.w[a] -= sub
		if rw.w[a] < 0 {
			rw.w[a] = 0
		}
	}
}

// URW is Algorithm 1: a weighted random walk whose weights are the
// estimated numbers of events remaining on each thread. For programs whose
// threads never block, URW provably samples every interleaving of the
// estimated lengths with equal probability; the weight of a thread tracks
// exactly the number of interleaving extensions beginning with its next
// event.
type URW struct {
	name string
	// NoSpawnCorrection disables the §3.5 thread-creation weight
	// correction (ablation knob; off in normal use).
	NoSpawnCorrection bool

	rng  *rand.Rand
	rw   remWeights
	wbuf []float64
}

// NewURW returns a fresh URW scheduler (requires ProgramInfo event counts).
func NewURW() *URW { return &URW{name: "URW"} }

// NewNonSelective returns the paper's N-S ablation: URW applied to every
// event of the program (selectivity disabled). Operationally identical to
// URW; the distinct name keeps reports honest about what was configured.
func NewNonSelective() *URW { return &URW{name: "N-S"} }

// Name implements sched.Algorithm.
func (a *URW) Name() string { return a.name }

// Begin implements sched.Algorithm.
func (a *URW) Begin(info *sched.ProgramInfo, rng *rand.Rand) {
	a.rng = rng
	a.rw.noCorrect = a.NoSpawnCorrection
	a.rw.reset(info, false)
}

// Next implements sched.Algorithm: sample an enabled thread with
// probability proportional to its remaining-event weight.
func (a *URW) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	a.wbuf = a.wbuf[:0]
	for _, tid := range e {
		a.wbuf = append(a.wbuf, a.rw.weight(st, tid))
	}
	return e[weightedIndex(a.rng, a.wbuf)]
}

// Observe implements sched.Algorithm: decrement the executing thread's
// count.
func (a *URW) Observe(ev sched.Event, st *sched.State) {
	a.rw.onEvent(st, ev.TID)
}

// ObserveSpawn implements sched.SpawnObserver: move the child's subtree
// weight off its ancestors (§3.5 thread-creation correction).
func (a *URW) ObserveSpawn(_, child sched.ThreadID, st *sched.State) {
	a.rw.onSpawn(st, child)
}

// AppendAnnotation implements sched.Annotator: the per-live-thread
// remaining-event weights the next pick samples from.
func (a *URW) AppendAnnotation(buf []byte, st *sched.State) []byte {
	return appendWeights(append(buf, "w="...), st, &a.rw)
}

// appendWeights renders the live threads' sampling weights as
// "[T0:3 T2:7]" without allocating beyond buf's growth.
func appendWeights(buf []byte, st *sched.State, rw *remWeights) []byte {
	buf = append(buf, '[')
	for tid := 0; tid < st.NumThreads(); tid++ {
		if st.Finished(tid) {
			continue
		}
		if buf[len(buf)-1] != '[' {
			buf = append(buf, ' ')
		}
		buf = append(buf, 'T')
		buf = strconv.AppendInt(buf, int64(tid), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(rw.weight(st, tid)), 10)
	}
	return append(buf, ']')
}
