package core

import (
	"fmt"
	"testing"

	"surw/internal/sched"
	"surw/internal/stats"
)

// The §3.4 guarantees: Δ-uniformity implies Δ_T-uniformity for any thread
// subset T, which yields closed-form lower bounds on bug-hitting
// probability under the clusters and duplicates threading patterns. These
// tests validate the bounds empirically against SURW.

// clusterProg builds c independent clusters of one writer (2 writes) and
// one reader (2 reads) on a per-cluster variable; the bug fires when any
// cluster's reader performs both reads before its writer writes — exactly
// 1 of the C(4,2)=6 intra-cluster interleavings.
func clusterProg(c int) (func(*sched.Thread), *sched.ProgramInfo) {
	prog := func(t *sched.Thread) {
		var hs []*sched.Handle
		for j := 0; j < c; j++ {
			x := t.NewVar(fmt.Sprintf("x%d", j), 0)
			hs = append(hs, t.Go(func(w *sched.Thread) {
				x.Add(w, 1)
				x.Add(w, 1)
			}))
			hs = append(hs, t.Go(func(w *sched.Thread) {
				first := x.Load(w)
				second := x.Load(w)
				w.Assert(!(first == 0 && second == 0), "cluster-bug")
			}))
		}
		t.JoinAll(hs...)
	}
	info := sched.NewProgramInfo()
	root := info.AddThread("0", "")
	info.Events[root] = 2 * c
	for i := 0; i < 2*c; i++ {
		l := info.AddThread(fmt.Sprintf("0.%d", i), "0")
		info.Events[l] = 2
		info.InterestingEvents[l] = 2
	}
	info.TotalEvents = 2*c + 4*c
	return prog, info
}

func hitRate(t *testing.T, prog func(*sched.Thread), info *sched.ProgramInfo, n int) float64 {
	t.Helper()
	hits := 0
	alg := NewSURW()
	for seed := 0; seed < n; seed++ {
		r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(seed)}, Info: info})
		if r.Buggy() {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

func TestClusterBoundHolds(t *testing.T) {
	const trials = 3000
	for _, c := range []int{1, 3} {
		prog, info := clusterProg(c)
		bound := stats.ClusterBound(stats.Binomial(4, 2), c)
		rate := hitRate(t, prog, info, trials)
		// The bound is a guaranteed lower bound; allow 4 sigma of sampling
		// noise below it.
		slack := 4 * 0.01
		if rate < bound-slack {
			t.Fatalf("c=%d: hit rate %.3f below the §3.4 bound %.3f", c, rate, bound)
		}
		t.Logf("c=%d: rate %.3f vs bound %.3f", c, rate, bound)
	}
}

// duplicatesProg builds ka writers and kb readers: writer i stores 1 then
// 2 into v_i; reader j loads every v_i and the bug fires when any read
// observes the mid-state 1 — per (i,j) pair, 1 of the C(3,1)=3 projected
// interleavings.
func duplicatesProg(ka, kb int) (func(*sched.Thread), *sched.ProgramInfo) {
	prog := func(t *sched.Thread) {
		vs := make([]*sched.Var, ka)
		for i := range vs {
			vs[i] = t.NewVar(fmt.Sprintf("v%d", i), 0)
		}
		var hs []*sched.Handle
		for i := 0; i < ka; i++ {
			v := vs[i]
			hs = append(hs, t.Go(func(w *sched.Thread) {
				v.Store(w, 1)
				v.Store(w, 2)
			}))
		}
		for j := 0; j < kb; j++ {
			hs = append(hs, t.Go(func(w *sched.Thread) {
				for i := 0; i < ka; i++ {
					w.Assert(vs[i].Load(w) != 1, "duplicates-bug")
				}
			}))
		}
		t.JoinAll(hs...)
	}
	info := sched.NewProgramInfo()
	root := info.AddThread("0", "")
	info.Events[root] = ka + kb
	idx := 0
	for i := 0; i < ka; i++ {
		l := info.AddThread(fmt.Sprintf("0.%d", idx), "0")
		info.Events[l] = 2
		info.InterestingEvents[l] = 2
		idx++
	}
	for j := 0; j < kb; j++ {
		l := info.AddThread(fmt.Sprintf("0.%d", idx), "0")
		info.Events[l] = ka
		info.InterestingEvents[l] = ka
		idx++
	}
	info.TotalEvents = ka + kb + 2*ka + ka*kb
	return prog, info
}

func TestDuplicatesBoundHolds(t *testing.T) {
	const trials = 3000
	for _, kk := range [][2]int{{1, 1}, {2, 2}} {
		ka, kb := kk[0], kk[1]
		prog, info := duplicatesProg(ka, kb)
		// Per pair: the writer has na=2 interesting events and the reader
		// nb=ka (one read per writer); the §3.4 bound guarantees hitting
		// any single one of the C(na+nb, na) pair-interleavings, of which
		// at least one exhibits the mid-state read.
		bound := stats.DuplicatesBound(2, ka, ka, kb)
		rate := hitRate(t, prog, info, trials)
		slack := 4 * 0.01
		if rate < bound-slack {
			t.Fatalf("ka=%d kb=%d: hit rate %.3f below the §3.4 bound %.3f", ka, kb, rate, bound)
		}
		t.Logf("ka=%d kb=%d: rate %.3f vs bound %.3f", ka, kb, rate, bound)
	}
}

// TestIrrelevantThreadsPreserveUniformity validates §3.4's first pattern:
// adding a busy monitoring thread whose events are not in Δ must not
// disturb the Δ-projected uniformity of the relevant threads.
func TestIrrelevantThreadsPreserveUniformity(t *testing.T) {
	const k, noise = 3, 30
	prog := func(t *sched.Thread) {
		x := t.NewVar("x", 1)
		log := t.NewVar("log", 0)
		a := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v << 1 })
			}
		})
		b := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v<<1 + 1 })
			}
		})
		mon := t.Go(func(w *sched.Thread) {
			for i := 0; i < noise; i++ {
				log.Add(w, 1)
			}
		})
		t.JoinAll(a, b, mon)
		t.SetBehavior(itoa(int(x.Peek())))
	}
	info := sched.NewProgramInfo()
	root := info.AddThread("0", "")
	info.Events[root] = 3
	la := info.AddThread("0.0", "0")
	lb := info.AddThread("0.1", "0")
	lm := info.AddThread("0.2", "0")
	info.Events[la], info.Events[lb], info.Events[lm] = k, k, noise
	info.InterestingEvents[la], info.InterestingEvents[lb] = k, k
	info.TotalEvents = 3 + 2*k + noise
	info.Interesting = func(ev sched.Event) bool {
		return ev.Kind.IsMemAccess() && ev.ObjHash == hashOf("x")
	}
	classes := binom(2*k, k)
	n := classes * 500
	counts := map[string]int{}
	alg := NewSURW()
	for seed := 0; seed < n; seed++ {
		r := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(seed)}, Info: info})
		counts[r.Behavior]++
	}
	if len(counts) != classes {
		t.Fatalf("saw %d of %d classes", len(counts), classes)
	}
	if x := chiSquare(counts, classes, n); x > 50 {
		t.Fatalf("chi2 = %.1f; monitor thread disturbed Δ-uniformity", x)
	}
}
