package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"surw/internal/sched"
)

// ---------------------------------------------------------------------------
// Test programs
// ---------------------------------------------------------------------------

// bitshift is the Figure 1 program: two threads atomically append a bit to
// shared x, thread A a 0 and thread B a 1, k times each. Every interleaving
// yields a distinct final x, so the final value identifies the interleaving.
func bitshift(k int) func(*sched.Thread) {
	return func(t *sched.Thread) {
		x := t.NewVar("x", 1) // leading 1 keeps early zeros significant
		a := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v << 1 })
			}
		})
		b := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v<<1 + 1 })
			}
		})
		t.Join(a)
		t.Join(b)
		t.SetBehavior(itoa(int(x.Peek())))
	}
}

// bitshiftInfo hand-builds the profile for bitshift(k).
func bitshiftInfo(k int, interesting func(sched.Event) bool) *sched.ProgramInfo {
	pi := sched.NewProgramInfo()
	root := pi.AddThread("0", "")
	a := pi.AddThread("0.0", "0")
	b := pi.AddThread("0.1", "0")
	pi.Events[root] = 2 // 2 joins (spawns are not events)
	pi.Events[a] = k
	pi.Events[b] = k
	pi.InterestingEvents[root] = 0
	pi.InterestingEvents[a] = k
	pi.InterestingEvents[b] = k
	pi.TotalEvents = 2 + 2*k
	pi.Interesting = interesting
	if interesting == nil {
		copy(pi.InterestingEvents, pi.Events)
	}
	return pi
}

// noisy is a Figure 3 analogue: thread A performs k interesting x-appends
// then m noise events on y; thread B performs m noise events then k
// x-appends. Without selectivity, x-interleavings where B runs early are
// vanishingly rare.
func noisy(k, m int) func(*sched.Thread) {
	return func(t *sched.Thread) {
		x := t.NewVar("x", 1)
		y := t.NewVar("y", 0)
		a := t.Go(func(w *sched.Thread) {
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v << 1 })
			}
			for i := 0; i < m; i++ {
				y.Add(w, 1)
			}
		})
		b := t.Go(func(w *sched.Thread) {
			for i := 0; i < m; i++ {
				y.Add(w, 1)
			}
			for i := 0; i < k; i++ {
				x.Update(w, func(v int64) int64 { return v<<1 + 1 })
			}
		})
		t.Join(a)
		t.Join(b)
		t.SetBehavior(itoa(int(x.Peek())))
	}
}

func noisyInfo(k, m int) *sched.ProgramInfo {
	pi := sched.NewProgramInfo()
	root := pi.AddThread("0", "")
	a := pi.AddThread("0.0", "0")
	b := pi.AddThread("0.1", "0")
	pi.Events[root] = 2
	pi.Events[a] = k + m
	pi.Events[b] = k + m
	pi.InterestingEvents[root] = 0
	pi.InterestingEvents[a] = k
	pi.InterestingEvents[b] = k
	pi.TotalEvents = 2 + 2*(k+m)
	pi.Interesting = func(ev sched.Event) bool {
		return ev.Kind.IsMemAccess() && ev.ObjHash == hashOf("x")
	}
	return pi
}

func hashOf(name string) uint64 {
	const off, prime = 14695981039346656037, 1099511628211
	h := uint64(off)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime
	}
	return h
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// sampleBehaviors runs prog n times under alg and tallies behaviours.
func sampleBehaviors(prog func(*sched.Thread), alg sched.Algorithm, info *sched.ProgramInfo, n int) map[string]int {
	counts := make(map[string]int)
	for seed := 0; seed < n; seed++ {
		res := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(seed)}, Info: info})
		if res.Buggy() {
			panic(res.Failure)
		}
		counts[res.Behavior]++
	}
	return counts
}

// chiSquare computes the statistic against a uniform expectation.
func chiSquare(counts map[string]int, classes, n int) float64 {
	exp := float64(n) / float64(classes)
	x := 0.0
	seen := 0
	for _, c := range counts {
		d := float64(c) - exp
		x += d * d / exp
		seen++
	}
	x += float64(classes-seen) * exp // unseen classes contribute (0-exp)^2/exp
	return x
}

// ---------------------------------------------------------------------------
// Uniformity (the paper's central claim, Figure 2)
// ---------------------------------------------------------------------------

func TestURWUniformOnBitshift(t *testing.T) {
	const k = 4
	classes := binom(2*k, k) // 70
	n := classes * 400
	info := bitshiftInfo(k, nil)
	counts := sampleBehaviors(bitshift(k), NewURW(), info, n)
	if len(counts) != classes {
		t.Fatalf("URW saw %d distinct outcomes, want %d", len(counts), classes)
	}
	// df = 69; P(chi2 > 120) < 0.0002. The test is seeded, so no flake.
	if x := chiSquare(counts, classes, n); x > 120 {
		t.Fatalf("URW chi-square = %.1f, too far from uniform", x)
	}
}

func TestRandomWalkSkewedOnBitshift(t *testing.T) {
	const k = 4
	classes := binom(2*k, k)
	n := classes * 400
	counts := sampleBehaviors(bitshift(k), NewRandomWalk(), NewProgramInfoForTest(), n)
	x := chiSquare(counts, classes, n)
	if x < 1000 {
		t.Fatalf("Random Walk chi-square = %.1f; expected heavy skew (sanity of the uniformity test)", x)
	}
}

// NewProgramInfoForTest returns a nil-safe empty profile.
func NewProgramInfoForTest() *sched.ProgramInfo { return nil }

func TestPCTSkewedOnBitshift(t *testing.T) {
	const k = 4
	classes := binom(2*k, k)
	n := classes * 400
	counts := sampleBehaviors(bitshift(k), NewPCT(10), bitshiftInfo(k, nil), n)
	if x := chiSquare(counts, classes, n); x < 1000 {
		t.Fatalf("PCT-10 chi-square = %.1f; expected heavy skew", x)
	}
}

func TestSURWDeltaUniformOnNoisyProgram(t *testing.T) {
	const k, m = 3, 12
	classes := binom(2*k, k) // 20
	n := classes * 500
	info := noisyInfo(k, m)
	counts := sampleBehaviors(noisy(k, m), NewSURW(), info, n)
	if len(counts) != classes {
		t.Fatalf("SURW saw %d distinct x outcomes, want %d: %v", len(counts), classes, counts)
	}
	// df = 19; P(chi2 > 50) < 1e-4.
	if x := chiSquare(counts, classes, n); x > 50 {
		t.Fatalf("SURW chi-square = %.1f, Δ-projection not uniform", x)
	}
}

func TestRandomWalkMissesRareDeltaInterleavings(t *testing.T) {
	// Under RW, B's first x-append before A's last requires B to win ~m
	// noise races first; with m=12 several of the 20 classes should be
	// unseen in a small budget, unlike SURW above.
	const k, m = 3, 12
	classes := binom(2*k, k)
	counts := sampleBehaviors(noisy(k, m), NewRandomWalk(), nil, 2000)
	if len(counts) >= classes {
		t.Fatalf("RW unexpectedly saw all %d classes", classes)
	}
}

func TestNonUniformAblationLessUniformThanSURW(t *testing.T) {
	const k = 4
	classes := binom(2*k, k)
	n := classes * 400
	info := bitshiftInfo(k, nil)
	xSURW := chiSquare(sampleBehaviors(bitshift(k), NewSURW(), info, n), classes, n)
	xNU := chiSquare(sampleBehaviors(bitshift(k), NewNonUniform(), info, n), classes, n)
	if xNU < 3*xSURW {
		t.Fatalf("N-U chi-square %.1f not clearly worse than SURW %.1f", xNU, xSURW)
	}
}

// ---------------------------------------------------------------------------
// Γ-completeness: SURW must reach every feasible interleaving
// ---------------------------------------------------------------------------

// replayAlg follows a fixed choice prefix (indices into Enabled), then takes
// index 0, recording the enabled-set width at every step.
type replayAlg struct {
	prefix []int
	widths []int
}

func (r *replayAlg) Name() string                         { return "replay" }
func (r *replayAlg) Begin(*sched.ProgramInfo, *rand.Rand) { r.widths = r.widths[:0] }
func (r *replayAlg) Observe(sched.Event, *sched.State)    {}
func (r *replayAlg) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	step := len(r.widths)
	r.widths = append(r.widths, len(e))
	if step < len(r.prefix) && r.prefix[step] < len(e) {
		return e[r.prefix[step]]
	}
	return e[0]
}

// Note: widths only records steps where the scheduler consulted the
// algorithm (>= 2 enabled); single-enabled steps are fast-pathed, which is
// fine because they offer no choice.

// enumerateInterleavings exhaustively explores all schedules of prog and
// returns the set of interleaving hashes.
func enumerateInterleavings(t *testing.T, prog func(*sched.Thread), limit int) map[uint64]bool {
	t.Helper()
	seen := make(map[uint64]bool)
	queue := [][]int{nil}
	for len(queue) > 0 {
		prefix := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		alg := &replayAlg{prefix: prefix}
		res := sched.Run(prog, alg, sched.Options{})
		if res.Buggy() || res.Truncated {
			t.Fatalf("enumeration run failed: %v truncated=%v", res.Failure, res.Truncated)
		}
		seen[res.InterleavingHash] = true
		if len(seen) > limit {
			t.Fatalf("more than %d interleavings; shrink the program", limit)
		}
		for step := len(prefix); step < len(alg.widths); step++ {
			for c := 1; c < alg.widths[step]; c++ {
				br := make([]int, step+1)
				copy(br, prefix)
				br[step] = c
				queue = append(queue, br)
			}
		}
	}
	return seen
}

func TestEnumerationMatchesCombinatorics(t *testing.T) {
	// bitshift(2): the two workers contribute C(4,2)=6 x-orders; the root's
	// join placements multiply the raw interleaving count, so compare
	// behaviours via exhaustive enumeration of final x instead.
	all := enumerateInterleavings(t, bitshift(2), 10_000)
	if len(all) < binom(4, 2) {
		t.Fatalf("enumerated %d interleavings, want >= %d", len(all), binom(4, 2))
	}
}

func TestSURWGammaComplete(t *testing.T) {
	prog := noisy(2, 1)
	all := enumerateInterleavings(t, prog, 100_000)
	info := noisyInfo(2, 1)
	got := make(map[uint64]bool)
	for seed := 0; seed < 400_000 && len(got) < len(all); seed++ {
		res := sched.Run(prog, NewSURW(), sched.Options{Base: sched.Base{Seed: int64(seed)}, Info: info})
		got[res.InterleavingHash] = true
	}
	if len(got) != len(all) {
		t.Fatalf("SURW reached %d of %d feasible interleavings", len(got), len(all))
	}
	for h := range got {
		if !all[h] {
			t.Fatalf("SURW produced an infeasible interleaving hash %x", h)
		}
	}
}

// ---------------------------------------------------------------------------
// PCT and POS behaviour
// ---------------------------------------------------------------------------

// orderBug fails iff the checker's read executes between the two setter
// writes — a depth-2 ordering bug.
func orderBug(t *sched.Thread) {
	a := t.NewVar("a", 0)
	b := t.NewVar("b", 0)
	setter := t.Go(func(w *sched.Thread) {
		a.Store(w, 1)
		b.Store(w, -1)
	})
	checker := t.Go(func(w *sched.Thread) {
		av := a.Load(w)
		bv := b.Load(w)
		ok := (av == 0 && bv == 0) || (av == 1 && bv == -1) || (av == 0 && bv == -1)
		w.Assert(ok, "order-bug")
	})
	t.Join(setter)
	t.Join(checker)
}

func firstBug(t *testing.T, prog func(*sched.Thread), alg sched.Algorithm, info *sched.ProgramInfo, limit int) int {
	t.Helper()
	for i := 0; i < limit; i++ {
		res := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: int64(i)}, Info: info})
		if res.Buggy() {
			return i + 1
		}
	}
	return -1
}

func TestPCTFindsShallowBug(t *testing.T) {
	// PCT needs a sane schedule-length estimate for its change points.
	info := sched.NewProgramInfo()
	info.AddThread("0", "")
	info.TotalEvents = 10
	if n := firstBug(t, orderBug, NewPCT(3), info, 500); n < 0 {
		t.Fatal("PCT-3 never found the depth-2 bug in 500 schedules")
	}
}

func TestPOSFindsShallowBug(t *testing.T) {
	if n := firstBug(t, orderBug, NewPOS(), nil, 500); n < 0 {
		t.Fatal("POS never found the depth-2 bug in 500 schedules")
	}
}

func TestAllAlgorithmsRunCleanProgram(t *testing.T) {
	info := bitshiftInfo(3, nil)
	for _, name := range AllNames() {
		alg, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 20; seed++ {
			res := sched.Run(bitshift(3), alg, sched.Options{Base: sched.Base{Seed: seed}, Info: info})
			if res.Buggy() || res.Truncated {
				t.Fatalf("%s seed %d: failure=%v truncated=%v", name, seed, res.Failure, res.Truncated)
			}
		}
	}
}

func TestAlgorithmsHandleNilInfo(t *testing.T) {
	for _, name := range AllNames() {
		alg, _ := New(name)
		for seed := int64(0); seed < 10; seed++ {
			res := sched.Run(noisy(2, 3), alg, sched.Options{Base: sched.Base{Seed: seed}})
			if res.Buggy() {
				t.Fatalf("%s with nil info: %v", name, res.Failure)
			}
		}
	}
}

func TestAlgorithmsHandleBlockingSync(t *testing.T) {
	prog := func(t *sched.Thread) {
		m := t.NewMutex("m")
		c := t.NewCond("c", m)
		flag := t.NewVar("flag", 0)
		waiter := t.Go(func(w *sched.Thread) {
			m.Lock(w)
			for flag.Load(w) == 0 {
				c.Wait(w)
			}
			m.Unlock(w)
		})
		m.Lock(t)
		flag.Store(t, 1)
		c.Signal(t)
		m.Unlock(t)
		t.Join(waiter)
	}
	for _, name := range AllNames() {
		alg, _ := New(name)
		for seed := int64(0); seed < 30; seed++ {
			res := sched.Run(prog, alg, sched.Options{Base: sched.Base{Seed: seed}})
			if res.Buggy() || res.Truncated {
				t.Fatalf("%s seed %d: %v truncated=%v", name, seed, res.Failure, res.Truncated)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Registry and helpers
// ---------------------------------------------------------------------------

func TestNewRegistry(t *testing.T) {
	for _, name := range AllNames() {
		alg, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := New("PCT-7"); err != nil {
		t.Fatal(err)
	}
	if a, _ := New("pct"); a.Name() != "PCT-3" {
		t.Fatal("bare PCT should default to depth 3")
	}
	for _, bad := range []string{"", "nope", "PCT-x", "PCT-0"} {
		if _, err := New(bad); err == nil {
			t.Fatalf("New(%q) should fail", bad)
		}
	}
}

func TestWeightedIndexProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := []float64{1, 0, 3}
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[weightedIndex(rng, w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("ratio = %.2f, want ~3", ratio)
	}
}

func TestWeightedIndexAllZeroUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := [4]int{}
	for i := 0; i < 4000; i++ {
		counts[weightedIndex(rng, []float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("all-zero fallback not uniform: counts[%d]=%d", i, c)
		}
	}
}

func TestWeightedIndexProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		for i, r := range raw {
			w[i] = float64(r)
		}
		i := weightedIndex(rng, w)
		if i < 0 || i >= len(w) {
			return false
		}
		// A positive-weight element must be chosen whenever one exists.
		anyPos := false
		for _, x := range w {
			if x > 0 {
				anyPos = true
			}
		}
		return !anyPos || w[i] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n int
		s string
	}{{0, "0"}, {7, "7"}, {10, "10"}, {1234, "1234"}} {
		if itoa(c.n) != c.s {
			t.Fatalf("itoa(%d) = %q", c.n, itoa(c.n))
		}
	}
}

func TestSortInts(t *testing.T) {
	f := func(xs []int) bool {
		ys := append([]int(nil), xs...)
		sortInts(ys)
		for i := 1; i < len(ys); i++ {
			if ys[i-1] > ys[i] {
				return false
			}
		}
		return len(ys) == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPCTChangePointsLowerPriority(t *testing.T) {
	// With depth >= trace length the running thread keeps getting demoted,
	// which forces frequent context switches; just assert it still
	// terminates correctly on a synchronizing program.
	info := bitshiftInfo(3, nil)
	for seed := int64(0); seed < 10; seed++ {
		res := sched.Run(bitshift(3), NewPCT(10), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v", seed, res.Failure)
		}
	}
}

func TestSURWWithWrongCountsStillCompletes(t *testing.T) {
	// Grossly wrong estimates must degrade quality, not correctness (§7).
	info := noisyInfo(3, 5)
	for i := range info.InterestingEvents {
		info.InterestingEvents[i] = 1 // far below truth
	}
	for seed := int64(0); seed < 50; seed++ {
		res := sched.Run(noisy(3, 5), NewSURW(), sched.Options{Base: sched.Base{Seed: seed}, Info: info})
		if res.Buggy() || res.Truncated {
			t.Fatalf("seed %d: %v truncated=%v", seed, res.Failure, res.Truncated)
		}
	}
}
