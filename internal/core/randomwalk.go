package core

import (
	"math/rand"

	"surw/internal/sched"
)

// RandomWalk schedules each enabled thread with equal probability at every
// step. It is the simplest randomized CCT algorithm and, as §2.1 of the
// paper shows, is heavily biased on the interleaving space: runs that
// repeatedly pick the same thread are exponentially more likely than
// balanced ones.
type RandomWalk struct {
	rng *rand.Rand
}

// NewRandomWalk returns a fresh RandomWalk scheduler.
func NewRandomWalk() *RandomWalk { return &RandomWalk{} }

// Name implements sched.Algorithm.
func (*RandomWalk) Name() string { return "RW" }

// Begin implements sched.Algorithm.
func (a *RandomWalk) Begin(_ *sched.ProgramInfo, rng *rand.Rand) { a.rng = rng }

// Next implements sched.Algorithm.
func (a *RandomWalk) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	return e[a.rng.Intn(len(e))]
}

// Observe implements sched.Algorithm.
func (*RandomWalk) Observe(sched.Event, *sched.State) {}
