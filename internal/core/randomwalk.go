package core

import (
	"math/rand"

	"surw/internal/sched"
)

// RandomWalk schedules each enabled thread with equal probability at every
// step. It is the simplest randomized CCT algorithm and, as §2.1 of the
// paper shows, is heavily biased on the interleaving space: runs that
// repeatedly pick the same thread are exponentially more likely than
// balanced ones.
type RandomWalk struct {
	rng *rand.Rand
	src rand.Source
}

// NewRandomWalk returns a fresh RandomWalk scheduler.
func NewRandomWalk() *RandomWalk { return &RandomWalk{} }

// Name implements sched.Algorithm.
func (*RandomWalk) Name() string { return "RW" }

// Begin implements sched.Algorithm. The source fast path is dropped here
// so a caller driving Begin directly (without BeginSource) gets the plain
// rng draws; the scheduler re-arms it right after via BeginSource.
func (a *RandomWalk) Begin(_ *sched.ProgramInfo, rng *rand.Rand) { a.rng, a.src = rng, nil }

// BeginSource implements sched.SourceChooser: with the raw source in hand,
// NextIndex replicates rand.Intn's draw algorithm inline (same values
// consumed in the same order, bit-exact) without the Rand method layers.
func (a *RandomWalk) BeginSource(src rand.Source) { a.src = src }

// Next implements sched.Algorithm.
func (a *RandomWalk) Next(st *sched.State) sched.ThreadID {
	e := st.Enabled()
	return e[a.rng.Intn(len(e))]
}

// NextIndex implements sched.IndexChooser: a uniform pick consumes one
// Intn draw exactly like Next, so the scheduler can skip materializing
// the enabled slice. With a source from BeginSource the draw is the
// inlined equivalent of rand.Intn for 0 < n < 2^31: Int31 is the top 31
// bits of Int63, power-of-two sizes mask directly, and other sizes use
// the same modulo-bias rejection threshold, so the stream of consumed
// source values is identical to rng.Intn(n).
func (a *RandomWalk) NextIndex(n int) int {
	src := a.src
	if src == nil {
		return a.rng.Intn(n)
	}
	if n&(n-1) == 0 {
		return int(int32(src.Int63()>>32) & int32(n-1))
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := int32(src.Int63() >> 32)
	for v > max {
		v = int32(src.Int63() >> 32)
	}
	return int(v % int32(n))
}

// Observe implements sched.Algorithm.
func (*RandomWalk) Observe(sched.Event, *sched.State) {}
