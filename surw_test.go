package surw

import (
	"math"
	"strings"
	"testing"
)

func racyProg(t *Thread) {
	c := t.NewVar("c", 0)
	h1 := t.Go(func(w *Thread) { c.Store(w, c.Load(w)+1) })
	h2 := t.Go(func(w *Thread) { c.Store(w, c.Load(w)+1) })
	t.Join(h1)
	t.Join(h2)
	t.Assert(c.Peek() == 2, "lost-update")
}

func cleanProg(t *Thread) {
	c := t.NewVar("c", 0)
	h := t.Go(func(w *Thread) { c.Add(w, 1) })
	c.Add(t, 1)
	t.Join(h)
}

func TestTestFindsBug(t *testing.T) {
	rep, err := Test(racyProg, Options{Schedules: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found() {
		t.Fatal("SURW did not find the lost update")
	}
	if rep.Failure.BugID != "lost-update" || rep.Schedule < 2 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "lost-update") {
		t.Fatalf("summary = %q", rep.String())
	}
}

func TestTestCleanProgram(t *testing.T) {
	rep, err := Test(cleanProg, Options{Schedules: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Found() {
		t.Fatalf("false positive: %+v", rep.Failure)
	}
	if rep.Schedules != 100 {
		t.Fatalf("ran %d schedules", rep.Schedules)
	}
	if !strings.Contains(rep.String(), "no bug") {
		t.Fatalf("summary = %q", rep.String())
	}
}

func TestReplayReproduces(t *testing.T) {
	opts := Options{Base: Base{Seed: 3}, Schedules: 500}
	rep, err := Test(racyProg, opts)
	if err != nil || !rep.Found() {
		t.Fatalf("setup failed: %v %+v", err, rep)
	}
	res, err := Replay(racyProg, rep, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Buggy() || res.Failure.BugID != rep.Failure.BugID {
		t.Fatalf("replay diverged: %+v", res.Failure)
	}
	if len(res.Trace) == 0 {
		t.Fatal("replay did not record a trace")
	}
}

func TestTestWithEveryAlgorithm(t *testing.T) {
	for _, alg := range []string{"SURW", "URW", "RW", "POS", "PCT-3", "N-U", "N-S"} {
		rep, err := Test(racyProg, Options{Schedules: 400, Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !rep.Found() {
			t.Fatalf("%s missed an easy lost update in 400 schedules", alg)
		}
	}
}

func TestTestUnknownAlgorithm(t *testing.T) {
	if _, err := Test(cleanProg, Options{Algorithm: "nope"}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Replay(cleanProg, &Report{}, Options{Algorithm: "nope"}); err == nil {
		t.Fatal("expected replay error")
	}
}

func TestRunLeftmostDeterministic(t *testing.T) {
	a := Run(cleanProg, nil, RunOptions{})
	b := Run(cleanProg, nil, RunOptions{})
	if a.InterleavingHash != b.InterleavingHash {
		t.Fatal("leftmost schedule nondeterministic")
	}
}

func TestNewAlgorithmNames(t *testing.T) {
	for _, n := range []string{"SURW", "URW", "RW", "POS", "PCT-7", "N-U", "N-S"} {
		if _, err := NewAlgorithm(n); err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", n, err)
		}
	}
}

func TestEstimate(t *testing.T) {
	// One cluster of two 1-event threads: 2 interleavings, bound 1/2.
	if got := Estimate([]int{1, 1}, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Estimate = %v", got)
	}
	// Two clusters: 1 - (1/2)^2 = 0.75.
	if got := Estimate([]int{1, 1}, 2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Estimate = %v", got)
	}
	// Multinomial(5,5) = 252.
	if got := Estimate([]int{5, 5}, 1); math.Abs(got-1.0/252) > 1e-9 {
		t.Fatalf("Estimate = %v", got)
	}
	if Estimate([]int{-1}, 1) != 0 {
		t.Fatal("negative counts must yield 0")
	}
}

func TestExploreCoverageAndEntropy(t *testing.T) {
	prog := func(th *Thread) {
		x := th.NewVar("x", 1)
		append01 := func(bit int64) func(*Thread) {
			return func(w *Thread) {
				for i := 0; i < 3; i++ {
					x.Update(w, func(v int64) int64 { return v<<1 | bit })
				}
			}
		}
		h1, h2 := th.Go(append01(0)), th.Go(append01(1))
		th.Join(h1)
		th.Join(h2)
		th.SetBehavior(string(rune('A' + x.Peek()%26)))
	}
	ex, err := Explore(prog, Options{Base: Base{Seed: 2}, Schedules: 600, Algorithm: "URW"})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Schedules != 600 || len(ex.Interleavings) < 10 || len(ex.Behaviors) < 5 {
		t.Fatalf("exploration too shallow: %d ilv, %d beh", len(ex.Interleavings), len(ex.Behaviors))
	}
	if ex.InterleavingEntropy() <= 0 || ex.BehaviorEntropy() <= 0 {
		t.Fatal("entropies must be positive")
	}
	if len(ex.Failures) != 0 {
		t.Fatalf("clean program reported failures: %v", ex.Failures)
	}
	if _, err := Explore(prog, Options{Algorithm: "bogus"}); err == nil {
		t.Fatal("expected error for bogus algorithm")
	}
}

func TestExploreWithTraceFilter(t *testing.T) {
	prog := func(th *Thread) {
		x := th.NewVar("x", 0)
		y := th.NewVar("y", 0)
		h := th.Go(func(w *Thread) { x.Add(w, 1); y.Add(w, 1) })
		x.Add(th, 1)
		y.Add(th, 1)
		th.Join(h)
	}
	onlyX := func(ev Event) bool { return ev.ObjHash == HashName("x") }
	filtered, err := Explore(prog, Options{Base: Base{Seed: 2}, Schedules: 300, Algorithm: "RW", TraceFilter: onlyX})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Explore(prog, Options{Base: Base{Seed: 2}, Schedules: 300, Algorithm: "RW"})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Interleavings) >= len(full.Interleavings) {
		t.Fatalf("filter did not shrink the space: %d vs %d",
			len(filtered.Interleavings), len(full.Interleavings))
	}
}

func TestCollectFacade(t *testing.T) {
	prof, err := Collect(racyProg, ProfileOptions{Base: Base{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Info.NumThreads() != 3 {
		t.Fatalf("threads = %d", prof.Info.NumThreads())
	}
	found := false
	for _, o := range prof.Objs {
		if o.Name == "c" && o.Threads >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("shared var c missing from census")
	}
}

func TestExploreCountsFailures(t *testing.T) {
	ex, err := Explore(racyProg, Options{Base: Base{Seed: 1}, Schedules: 300, Algorithm: "RW"})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Failures["lost-update"] == 0 {
		t.Fatal("failures not tallied")
	}
}

func TestRecordMinimizeReplayFacade(t *testing.T) {
	var rec Recording
	var bugID string
	found := false
	for seed := int64(0); seed < 500 && !found; seed++ {
		res, r := RecordRun(racyProg, NewRandomWalk(), RunOptions{Base: Base{Seed: seed}})
		if res.Buggy() {
			rec, bugID, found = r, res.BugID(), true
		}
	}
	if !found {
		t.Fatal("no failing schedule recorded")
	}
	min, attempts := MinimizeRecording(racyProg, rec, bugID, RunOptions{}, 0)
	if attempts == 0 {
		t.Fatal("minimization did nothing")
	}
	res := ReplayRecording(racyProg, min, RunOptions{RecordTrace: true})
	if !res.Buggy() || res.BugID() != bugID {
		t.Fatalf("minimized replay lost the bug: %+v", res.Failure)
	}
	// Serialization round-trips through the string form.
	back, err := ParseRecording(min.String())
	if err != nil {
		t.Fatal(err)
	}
	if again := ReplayRecording(racyProg, back, RunOptions{}); !again.Buggy() {
		t.Fatal("parsed recording lost the bug")
	}
}

func TestChannelsThroughFacade(t *testing.T) {
	var sum int
	res := Run(func(th *Thread) {
		ch := NewChan[int](th, "ch", 2)
		prod := th.Go(func(w *Thread) {
			ch.Send(w, 1)
			ch.Send(w, 2)
			ch.Close(w)
		})
		for {
			v, ok := ch.Recv(th)
			if !ok {
				break
			}
			sum += v
		}
		th.Join(prod)
	}, NewRandomWalk(), RunOptions{Base: Base{Seed: 4}})
	if res.Buggy() || sum != 3 {
		t.Fatalf("failure=%v sum=%d", res.Failure, sum)
	}
}

func TestNewRefThroughFacade(t *testing.T) {
	var got int
	res := Run(func(th *Thread) {
		r := NewRef(th, "list", []int{1})
		h := th.Go(func(w *Thread) {
			r.Update(w, func(xs []int) []int { return append(xs, 2) })
		})
		th.Join(h)
		got = len(r.Peek())
	}, nil, RunOptions{})
	if got != 2 {
		t.Fatalf("ref length = %d", got)
	}
	if res.Buggy() {
		t.Fatal(res.Failure)
	}
}

func TestDetectRacesFacade(t *testing.T) {
	res := Run(racyProg, NewRandomWalk(), RunOptions{Base: Base{Seed: 3}, RecordTrace: true})
	// Some seeds order the accesses; scan a few for a race report.
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		r := Run(racyProg, NewRandomWalk(), RunOptions{Base: Base{Seed: seed}, RecordTrace: true})
		found = len(DetectRaces(r)) > 0
	}
	if !found {
		t.Fatal("no race detected across seeds")
	}
	_ = res
}

func TestSelectRacyVarsDrivesTest(t *testing.T) {
	rep, err := Test(racyProg, Options{Base: Base{Seed: 9}, Schedules: 500, Select: SelectRacyVars(racyProg, 8, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found() {
		t.Fatal("SURW with race-derived Δ missed the lost update")
	}
	if !strings.Contains(rep.Delta, "racy vars") {
		t.Fatalf("Δ = %q, want race-derived", rep.Delta)
	}
}
