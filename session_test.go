package surw

// Tests for the Session driver: the engine Test, Explore, and Replay
// delegate to. The equivalence tests pin the redesign's core contract —
// driving a Session by hand is observably identical to the historical
// entry points — and the context tests pin graceful cancellation:
// a cancelled run returns partial results, never a panic.

import (
	"context"
	"errors"
	"testing"
)

func TestSessionStepwiseMatchesTest(t *testing.T) {
	opts := Options{Base: Base{Seed: 3}, Schedules: 500}
	rep, err := Test(racyProg, opts)
	if err != nil || !rep.Found() {
		t.Fatalf("setup failed: %v %+v", err, rep)
	}

	s, err := NewSession(racyProg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Remaining() != 500 {
		t.Fatalf("Remaining = %d, want 500", s.Remaining())
	}
	for s.Remaining() > 0 {
		res, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if res.Buggy() {
			if got := s.Index() + 1; got != rep.Schedule {
				t.Fatalf("stepwise found bug at schedule %d, Test at %d", got, rep.Schedule)
			}
			if s.LastSeed() != rep.Seed {
				t.Fatalf("stepwise seed %d, Test seed %d", s.LastSeed(), rep.Seed)
			}
			if s.Delta() != rep.Delta {
				t.Fatalf("stepwise Δ %q, Test Δ %q", s.Delta(), rep.Delta)
			}
			return
		}
	}
	t.Fatal("stepwise session never found the bug Test found")
}

func TestSessionScheduleSeedDerivation(t *testing.T) {
	s, err := NewSession(cleanProg, Options{Base: Base{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	// The affine derivation is part of the API contract: distributed
	// workers and replay tooling address schedules by index alone.
	for i := 0; i < 5; i++ {
		want := int64(7) + int64(i)*2_000_033 + 1
		if got := s.ScheduleSeed(i); got != want {
			t.Fatalf("ScheduleSeed(%d) = %d, want %d", i, got, want)
		}
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if s.LastSeed() != s.ScheduleSeed(0) {
		t.Fatalf("LastSeed = %d, want schedule 0's seed %d", s.LastSeed(), s.ScheduleSeed(0))
	}
}

func TestSessionReplayMatchesReplay(t *testing.T) {
	opts := Options{Base: Base{Seed: 3}, Schedules: 500}
	rep, err := Test(racyProg, opts)
	if err != nil || !rep.Found() {
		t.Fatalf("setup failed: %v %+v", err, rep)
	}
	old, err := Replay(racyProg, rep, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(racyProg, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Replay(rep.Schedule, rep.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterleavingHash != old.InterleavingHash || res.BugID() != old.BugID() {
		t.Fatalf("Session.Replay diverged from Replay: %016x vs %016x",
			res.InterleavingHash, old.InterleavingHash)
	}
}

func TestSessionProfileExposed(t *testing.T) {
	s, err := NewSession(racyProg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Profile() == nil || s.Profile().Info.NumThreads() != 3 {
		t.Fatalf("session profile missing or wrong: %+v", s.Profile())
	}
}

func TestTestContextCancelledReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first schedule
	rep, err := TestContext(ctx, cleanProg, Options{Schedules: 100})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled Test returned a nil report, want a partial one")
	}
	if rep.Schedules != 0 || rep.Found() {
		t.Fatalf("pre-cancelled run still ran schedules: %+v", rep)
	}
}

func TestTestContextCancelMidHunt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	// Cancel from inside the program under test after a few schedules:
	// cancellation lands between schedules, and the completed ones stand.
	prog := func(th *Thread) {
		ran++
		if ran == 4 {
			cancel()
		}
		cleanProg(th)
	}
	rep, err := TestContext(ctx, prog, Options{Schedules: 100})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 4 runs: 1 profiling + 3 testing schedules, cancelled before the 4th.
	if rep.Schedules != 3 {
		t.Fatalf("partial report has %d schedules, want 3", rep.Schedules)
	}
}

func TestExploreContextCancelledReturnsPartialTallies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex, err := ExploreContext(ctx, cleanProg, Options{Schedules: 100, Algorithm: "RW"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ex == nil || ex.Schedules != 0 {
		t.Fatalf("cancelled Explore = %+v, want empty partial tallies", ex)
	}
}

func TestSessionNextAfterCancelKeepsReturningError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewSession(cleanProg, Options{Schedules: 10, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	if s.Index() != 1 {
		t.Fatalf("cancelled session index = %d, want 1", s.Index())
	}
}
