module surw

go 1.23
