module surw

go 1.22
