// Package surw is a controlled concurrency testing library for Go,
// reproducing "Selectively Uniform Concurrency Testing" (ASPLOS 2025).
//
// Programs under test are written against the virtual-thread API — Thread,
// Var and the generic Ref[E] for shared state, Chan[E] for Go-style
// channels, and Mutex, RWMutex, Cond, Semaphore, WaitGroup, Once for
// synchronization: every shared-memory or synchronization operation is an
// atomic event, execution is fully serialized, and a pluggable scheduling
// algorithm decides which thread runs each event. Schedules are
// deterministic given their seed, so any bug found is replayable.
//
// Existing code written against the standard library need not be rewritten
// by hand: the surw/surwsync subpackage is a drop-in sync/channel frontend
// (surwsync.Mutex, surwsync.Chan[T], surwsync.Go, ...) and cmd/surwport
// rewrites stdlib concurrency onto it mechanically.
//
// The flagship algorithm is SURW (Selectively Uniform Random Walk): given a
// subset Δ of interesting events with per-thread count estimates, it
// samples the interleavings of Δ uniformly while keeping every full
// interleaving reachable. The package also provides the URW special case
// and the standard baselines (Random Walk, PCT, POS).
//
// Quick start:
//
//	report, err := surw.Test(func(t *surw.Thread) {
//	    c := t.NewVar("c", 0)
//	    done := surw.NewChan[int](t, "done", 2)
//	    t.Go(func(w *surw.Thread) { c.Store(w, c.Load(w)+1); done.Send(w, 1) })
//	    t.Go(func(w *surw.Thread) { c.Store(w, c.Load(w)+1); done.Send(w, 1) })
//	    done.Recv(t)
//	    done.Recv(t)
//	    t.Assert(c.Peek() == 2, "lost-update")
//	}, surw.Options{Schedules: 1000})
//
// Structured values travel through surw.NewRef[E] cells and surw.NewChan[E]
// channels the same way: every access decomposes into scheduled events.
//
// Test profiles the program once, picks an interesting-event subset with
// the paper's single-shared-variable heuristic (re-drawn each schedule),
// and hunts for a failing schedule with SURW.
package surw

import (
	"context"
	"fmt"
	"math/rand"

	"surw/internal/core"
	"surw/internal/profile"
	"surw/internal/race"
	"surw/internal/replay"
	"surw/internal/sched"
	"surw/internal/stats"
)

// Re-exported program-authoring API. See the sched package for full
// documentation of each type.
type (
	// Thread is a virtual thread of the program under test.
	Thread = sched.Thread
	// Handle names a spawned thread for joining.
	Handle = sched.Handle
	// Var is a shared int64 variable; every access is a scheduled event.
	Var = sched.Var
	// Mutex is a non-reentrant lock.
	Mutex = sched.Mutex
	// RWMutex is a readers-writer lock.
	RWMutex = sched.RWMutex
	// WaitGroup mirrors sync.WaitGroup: Wait blocks until the counter is zero.
	WaitGroup = sched.WaitGroup
	// Once mirrors sync.Once: Do runs its function exactly once.
	Once = sched.Once
	// Cond is a condition variable without spurious wakeups.
	Cond = sched.Cond
	// Semaphore is a counting semaphore.
	Semaphore = sched.Semaphore
	// Event is one atomic step of one thread.
	Event = sched.Event
	// Result summarizes one schedule.
	Result = sched.Result
	// Failure describes a bug manifestation.
	Failure = sched.Failure
	// Algorithm is a pluggable scheduling policy.
	Algorithm = sched.Algorithm
	// ProgramInfo carries per-thread event-count estimates and the Δ set.
	ProgramInfo = sched.ProgramInfo
	// RunOptions configures a single schedule.
	RunOptions = sched.Options
	// Profile is the census a profiling run produces.
	Profile = profile.Profile
	// ProfileOptions configures Collect.
	ProfileOptions = profile.Options
	// Selection is a chosen interesting-event subset Δ.
	Selection = profile.Selection
)

// HashName returns the stable hash used for Event.ObjHash and
// Event.PathHash, for writing Δ predicates and trace filters.
func HashName(name string) uint64 { return sched.HashName(name) }

// NewRef creates a shared cell holding an arbitrary value; every access is
// a scheduled event.
func NewRef[E any](t *Thread, name string, init E) *sched.Ref[E] {
	return sched.NewRef[E](t, name, init)
}

// NewChan creates a Go-style channel (capacity 0 = unbuffered rendezvous)
// whose sends and receives decompose into scheduled events.
func NewChan[E any](t *Thread, name string, capacity int) *sched.Chan[E] {
	return sched.NewChan[E](t, name, capacity)
}

// Algorithm constructors.
var (
	// NewSURW returns the paper's Algorithm 2.
	NewSURW = core.NewSURW
	// NewURW returns Algorithm 1 (uniform random walk by remaining counts).
	NewURW = core.NewURW
	// NewRandomWalk returns the naive uniform-choice baseline.
	NewRandomWalk = core.NewRandomWalk
	// NewPOS returns Partial Order Sampling.
	NewPOS = core.NewPOS
	// NewPCT returns Probabilistic Concurrency Testing with the given depth.
	NewPCT = core.NewPCT
	// NewAlgorithm resolves an algorithm by report name ("SURW", "PCT-3",
	// "POS", "RW", "URW", "N-U", "N-S").
	NewAlgorithm = core.New
)

// Run executes one schedule of prog under alg. A nil algorithm runs the
// deterministic leftmost schedule.
func Run(prog func(*Thread), alg Algorithm, opts RunOptions) *Result {
	return sched.Run(prog, alg, opts)
}

// Collect performs the profiling run(s) for prog: per-thread event counts,
// the spawn tree, and a census of shared objects.
func Collect(prog func(*Thread), opts ProfileOptions) (*Profile, error) {
	return profile.Collect(prog, opts)
}

// Base is the option set shared by every schedule-running entry point:
// Options, RunOptions, and ProfileOptions all embed it, so Seed (default 1
// at this layer), ProgSeed, and MaxSteps plumb through the layers as one
// struct copy.
type Base = sched.Base

// Options configures Test and Explore.
type Options struct {
	// Base carries the shared Seed/ProgSeed/MaxSteps fields (see Base).
	Base
	// Schedules is the testing budget (default 1000).
	Schedules int
	// Algorithm names the scheduler (default "SURW").
	Algorithm string
	// Select overrides the per-schedule Δ choice; nil uses the paper's
	// single-shared-variable heuristic.
	Select func(p *Profile, rng *rand.Rand) (Selection, bool)
	// TraceFilter restricts which events fold into each schedule's
	// interleaving fingerprint (Explore's coverage unit); nil keeps all.
	TraceFilter func(Event) bool
	// Context, when non-nil, cancels the run between schedules: Test and
	// Explore return their partial results together with the context's
	// error. TestContext and ExploreContext are shorthands that set it.
	Context context.Context
}

// normalized is the one place the driver defaults are applied: the shared
// Base defaults plus this layer's Schedules/Algorithm/Seed fallbacks.
// Every entry point (Test, Explore, Replay, NewSession) flows through it.
func (o Options) normalized() Options {
	o.Base = o.Base.Normalized()
	if o.Schedules <= 0 {
		o.Schedules = 1000
	}
	if o.Algorithm == "" {
		o.Algorithm = "SURW"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Report is the outcome of Test.
type Report struct {
	// Failure is the first bug found, or nil.
	Failure *Failure
	// Schedule is the 1-based index of the failing schedule (counting the
	// profiling run), or -1.
	Schedule int
	// Seed replays the failing schedule via Replay.
	Seed int64
	// Delta describes the interesting-event subset active when the bug
	// fired.
	Delta string
	// Schedules is the number of testing schedules executed.
	Schedules int
}

// Found reports whether a bug was found.
func (r *Report) Found() bool { return r.Failure != nil }

// Test hunts for a failing schedule of prog: it profiles once, then runs up
// to opts.Schedules schedules under the chosen algorithm, re-drawing Δ per
// schedule for the selective algorithms. The error is non-nil only for
// configuration problems (unknown algorithm) or a cancelled Options.Context
// (in which case the partial report accompanies it); "no bug found" is
// reported via Report.Found. Test is a thin wrapper over Session.
func Test(prog func(*Thread), opts Options) (*Report, error) {
	s, err := NewSession(prog, opts)
	if err != nil {
		return nil, err
	}
	return s.Test()
}

// TestContext is Test with an explicit cancellation context: cancelling ctx
// between schedules returns the partial report and the context's error.
func TestContext(ctx context.Context, prog func(*Thread), opts Options) (*Report, error) {
	opts.Context = ctx
	return Test(prog, opts)
}

// Replay re-executes one schedule with the exact options that produced a
// Report's failure, returning its Result (including a full trace). It is a
// thin wrapper over Session: a fresh session re-derives the Δ stream up to
// the failing schedule so the replayed schedule sees the same ProgramInfo.
func Replay(prog func(*Thread), rep *Report, opts Options) (*Result, error) {
	s, err := NewSession(prog, opts)
	if err != nil {
		return nil, err
	}
	return s.Replay(rep.Schedule, rep.Seed)
}

// DataRace is a detected happens-before data race on a shared variable.
type DataRace = race.Race

// DetectRaces runs a vector-clock happens-before analysis over a recorded
// schedule (RunOptions.RecordTrace must have been set) and returns the
// races found, at most one per variable.
func DetectRaces(res *Result) []DataRace {
	return race.Detect(res.Trace, res.ThreadPaths)
}

// SelectRacyVars samples random-walk schedules, race-detects their traces,
// and returns the Δ "all accesses to the racy variables" — the paper's
// §6 feedback loop from dynamic analysis into SURW. Plug it into
// Options.Select to focus Test/Explore on racy state.
func SelectRacyVars(prog func(*Thread), runs int, seed int64) func(*Profile, *rand.Rand) (Selection, bool) {
	return func(p *Profile, _ *rand.Rand) (Selection, bool) {
		return race.SelectRacy(p, prog, runs, seed, 0)
	}
}

// Recording is a serializable schedule: the choice taken at every
// scheduling decision. See RecordRun / ReplayRecording / MinimizeRecording.
type Recording = replay.Recording

// ParseRecording deserializes a Recording produced by Recording.String.
func ParseRecording(s string) (Recording, error) { return replay.Parse(s) }

// RecordRun executes one schedule under alg while recording every choice,
// so the schedule can be replayed or minimized later — even on another
// machine, via Recording.String.
func RecordRun(prog func(*Thread), alg Algorithm, opts RunOptions) (*Result, Recording) {
	return replay.Record(prog, alg, opts)
}

// ReplayRecording re-executes a recorded schedule exactly. ProgSeed and
// MaxSteps must match the recording run; the scheduling seed is unused.
func ReplayRecording(prog func(*Thread), rec Recording, opts RunOptions) *Result {
	return replay.Replay(prog, rec, opts)
}

// MinimizeRecording shrinks a failing recording while preserving its bug
// ID, flattening preemptive context switches so the failing interleaving
// becomes readable. It returns the minimized recording and the number of
// replays spent.
func MinimizeRecording(prog func(*Thread), rec Recording, bugID string, opts RunOptions, maxAttempts int) (Recording, int) {
	return replay.Minimize(prog, rec, bugID, opts, maxAttempts)
}

// Exploration summarizes a coverage study (see Explore).
type Exploration struct {
	// Interleavings tallies how often each distinct interleaving was
	// sampled (keyed by fingerprint).
	Interleavings map[uint64]int
	// Behaviors tallies the program-reported behaviour fingerprints.
	Behaviors map[string]int
	// Schedules is the number of schedules sampled.
	Schedules int
	// Failures counts buggy schedules by bug ID.
	Failures map[string]int
}

// InterleavingEntropy returns the Shannon entropy (bits) of the sampled
// interleaving distribution; higher is more even.
func (e *Exploration) InterleavingEntropy() float64 { return stats.EntropyOfMap(e.Interleavings) }

// BehaviorEntropy returns the Shannon entropy of the sampled behaviours.
func (e *Exploration) BehaviorEntropy() float64 { return stats.EntropyOfMap(e.Behaviors) }

// Explore samples opts.Schedules schedules of prog and tallies the
// distinct interleavings and behaviours witnessed — the §5 case-study
// methodology. Report behaviours from the program with Thread.SetBehavior.
// Explore is a thin wrapper over Session.
func Explore(prog func(*Thread), opts Options) (*Exploration, error) {
	s, err := NewSession(prog, opts)
	if err != nil {
		return nil, err
	}
	return s.Explore()
}

// ExploreContext is Explore with an explicit cancellation context:
// cancelling ctx between schedules returns the partial tallies and the
// context's error.
func ExploreContext(ctx context.Context, prog func(*Thread), opts Options) (*Exploration, error) {
	opts.Context = ctx
	return Explore(prog, opts)
}

// Estimate computes the §3.4 lower bound on the probability that one
// schedule exposes a bug under the "clusters" pattern: c independent
// clusters whose intra-cluster interleaving count is the multinomial of
// the given per-thread interesting-event counts.
func Estimate(clusterCounts []int, clusters int) float64 {
	perms := multinomial(clusterCounts)
	if perms <= 0 {
		return 0
	}
	p := 1.0
	for i := 0; i < clusters; i++ {
		p *= 1 - 1/perms
	}
	return 1 - p
}

func multinomial(ks []int) float64 {
	for _, k := range ks {
		if k < 0 {
			return 0
		}
	}
	r := 1.0
	seen := 0
	for _, k := range ks {
		for i := 1; i <= k; i++ {
			seen++
			r = r * float64(seen) / float64(i)
		}
	}
	return r
}

// String renders a short human summary of a report.
func (r *Report) String() string {
	if !r.Found() {
		return fmt.Sprintf("no bug in %d schedules", r.Schedules)
	}
	return fmt.Sprintf("bug %q found at schedule %d (Δ = %s, replay seed %d)",
		r.Failure.BugID, r.Schedule, r.Delta, r.Seed)
}
