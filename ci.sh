#!/bin/sh
# CI gate: build + vet everything, run the full test suite, then re-run the
# concurrency-bearing packages under the race detector (short mode keeps the
# race pass under a minute; the parallel runner and the experiment grids are
# still exercised with multi-worker configurations).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short ./internal/workpool ./internal/sched ./internal/runner ./internal/experiments
