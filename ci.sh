#!/bin/sh
# CI gate: build + vet everything, run the full test suite with per-package
# coverage, enforce coverage floors on the core packages, re-run the
# concurrency-bearing packages under the race detector (short mode keeps the
# race pass under a minute), and finish with a short coverage-guided fuzz
# smoke of the two native fuzz targets.
set -eux

go vet ./...
go build ./...
# (no pipe: a pipeline would mask go test's exit status under plain sh)
go test -cover ./... > /tmp/surw-cover.txt 2>&1 || { cat /tmp/surw-cover.txt; exit 1; }
cat /tmp/surw-cover.txt

# Coverage floors: current-minus-1% for the scheduler substrate and the
# algorithm implementations. A drop below the floor means tests were lost
# or new code landed untested; raise the floor when coverage climbs.
awk '
  /^ok/ && /coverage:/ {
    pkg = $2
    for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%/, "", $(i+1)); cov = $(i+1) + 0 }
    printf "%-40s %5.1f%%\n", pkg, cov
    if (pkg == "surw/internal/sched" && cov < 91.9) { printf "FAIL: %s coverage %.1f%% below floor 91.9%%\n", pkg, cov; bad = 1 }
    if (pkg == "surw/internal/core"  && cov < 95.2) { printf "FAIL: %s coverage %.1f%% below floor 95.2%%\n", pkg, cov; bad = 1 }
  }
  END { exit bad }
' /tmp/surw-cover.txt

go test -race -short ./internal/workpool ./internal/sched ./internal/runner ./internal/experiments ./internal/crosscheck

# Observability overhead gate: with tracing disabled the pooled scheduler
# must stay at its allocation floor — the Tracer hook is a nil-check, not a
# cost. (No pipe, same reason as above.)
go test -bench='^BenchmarkPooledSchedule$' -benchmem -benchtime=2000x -run='^$' . > /tmp/surw-bench.txt 2>&1 || { cat /tmp/surw-bench.txt; exit 1; }
go run ./cmd/surwobs -in /tmp/surw-bench.txt -gate 'BenchmarkPooledSchedule/pooled.allocs/op<=11'

# Observability smoke: export a Chrome trace and validate it, then dump a
# flight record from a failing SCTBench target, validate it, and replay it
# bit-exactly.
rm -rf /tmp/surw-obs-smoke
mkdir -p /tmp/surw-obs-smoke
go run ./cmd/surwrun -target bitshift_5 -alg URW -limit 50 -trace /tmp/surw-obs-smoke/trace.json
go run ./cmd/surwobs -check-trace /tmp/surw-obs-smoke/trace.json
go run ./cmd/surwrun -target CS/reorder_4 -alg SURW -sessions 1 -limit 2000 -flight-dir /tmp/surw-obs-smoke
FLIGHT=$(ls /tmp/surw-obs-smoke/flight_*.json)
go run ./cmd/surwobs -check-flight "$FLIGHT"
go run ./cmd/surwrun -replay-flight "$FLIGHT"

# Fuzz smoke: a short coverage-guided run of each native fuzz target (the
# full checked-in seed corpora already ran as part of `go test` above).
FUZZTIME=10s make fuzz-smoke
