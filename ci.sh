#!/bin/sh
# CI gate: build + vet everything, run the full test suite with per-package
# coverage, enforce coverage floors on the core packages, re-run the
# concurrency-bearing packages under the race detector (short mode keeps the
# race pass under a minute), and finish with a short coverage-guided fuzz
# smoke of the two native fuzz targets.
set -eux

go vet ./...
go build ./...
# (no pipe: a pipeline would mask go test's exit status under plain sh)
go test -cover ./... > /tmp/surw-cover.txt 2>&1 || { cat /tmp/surw-cover.txt; exit 1; }
cat /tmp/surw-cover.txt

# Coverage floors: current-minus-1% for the scheduler substrate and the
# algorithm implementations. A drop below the floor means tests were lost
# or new code landed untested; raise the floor when coverage climbs.
awk '
  /^ok/ && /coverage:/ {
    pkg = $2
    for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%/, "", $(i+1)); cov = $(i+1) + 0 }
    printf "%-40s %5.1f%%\n", pkg, cov
    if (pkg == "surw/internal/sched" && cov < 91.9) { printf "FAIL: %s coverage %.1f%% below floor 91.9%%\n", pkg, cov; bad = 1 }
    if (pkg == "surw/internal/core"  && cov < 95.2) { printf "FAIL: %s coverage %.1f%% below floor 95.2%%\n", pkg, cov; bad = 1 }
  }
  END { exit bad }
' /tmp/surw-cover.txt

go test -race -short ./internal/workpool ./internal/sched ./internal/runner ./internal/experiments ./internal/crosscheck ./internal/campaign ./internal/remote ./surwsync

# Observability overhead gate: with tracing disabled the pooled scheduler
# must stay at its allocation floor — the Tracer hook is a nil-check, not a
# cost. (No pipe, same reason as above.)
go test -bench='^BenchmarkPooledSchedule$' -benchmem -benchtime=2000x -run='^$' . > /tmp/surw-bench.txt 2>&1 || { cat /tmp/surw-bench.txt; exit 1; }
go run ./cmd/surwobs -in /tmp/surw-bench.txt -gate 'BenchmarkPooledSchedule/pooled.allocs/op<=11'

# Allocation and throughput gates for the parallel session engine. The
# allocs/schedule floor is deterministic (~9.5 after prefix checkpointing
# and batched run-to-next-decision; the gate allows small noise, not a
# regression), so one sample gates it. The schedules/s gate locks in the
# >=5x speedup over the pre-checkpointing BENCH_obs.json baseline (5519
# schedules/s on the reference machine -> gate at 27595). It is
# wall-clock: the reference machine measures ~31-36k when quiet but dips
# ~30% under neighbor load, so the gate takes the best of three samples
# (a genuine fast-path regression lands back near the 5.5k baseline and
# fails all three; -benchtime=20x smooths per-sample jitter). The
# baseline JSON itself must parse — it is the machine-readable record
# reports embed.
go test -bench='^BenchmarkParallelSessions$/^workers_1$' -benchmem -benchtime=20x -run='^$' . > /tmp/surw-bench-par.txt 2>&1 || { cat /tmp/surw-bench-par.txt; exit 1; }
go run ./cmd/surwobs -in /tmp/surw-bench-par.txt -gate 'BenchmarkParallelSessions/workers_1.allocs/schedule<=55'
sched_gate_ok=0
for attempt in 1 2 3; do
    if go run ./cmd/surwobs -in /tmp/surw-bench-par.txt -gate 'BenchmarkParallelSessions/workers_1.schedules/s>=27595'; then
        sched_gate_ok=1
        break
    fi
    go test -bench='^BenchmarkParallelSessions$/^workers_1$' -benchmem -benchtime=20x -run='^$' . > /tmp/surw-bench-par.txt 2>&1 || { cat /tmp/surw-bench-par.txt; exit 1; }
done
test "$sched_gate_ok" -eq 1 || go run ./cmd/surwobs -in /tmp/surw-bench-par.txt -gate 'BenchmarkParallelSessions/workers_1.schedules/s>=27595'
test -s BENCH_obs.json
go run ./cmd/surwobs -bench2json -in /tmp/surw-bench-par.txt -out /tmp/surw-bench-par.json

# Benchmark trajectory gate: -bench-compare must accept an unchanged
# snapshot and reject one whose schedules/s collapsed — the tool ci.sh and
# release branches use against the committed BENCH_obs.json baseline. The
# degraded copy is the real snapshot with its throughput forced to 1, a
# >10% drop by any measure.
go run ./cmd/surwobs -bench-compare /tmp/surw-bench-par.json /tmp/surw-bench-par.json
sed -E 's|"schedules/s": [0-9.eE+-]+|"schedules/s": 1|' /tmp/surw-bench-par.json > /tmp/surw-bench-bad.json
if go run ./cmd/surwobs -bench-compare /tmp/surw-bench-par.json /tmp/surw-bench-bad.json > /dev/null 2>&1; then
    echo "FAIL: -bench-compare accepted a collapsed schedules/s"
    exit 1
fi

# Observability smoke: export a Chrome trace and validate it, then dump a
# flight record from a failing SCTBench target, validate it, and replay it
# bit-exactly.
rm -rf /tmp/surw-obs-smoke
mkdir -p /tmp/surw-obs-smoke
go run ./cmd/surwrun -target bitshift_5 -alg URW -limit 50 -trace /tmp/surw-obs-smoke/trace.json
go run ./cmd/surwobs -check-trace /tmp/surw-obs-smoke/trace.json
go run ./cmd/surwrun -target CS/reorder_4 -alg SURW -sessions 1 -limit 2000 -flight-dir /tmp/surw-obs-smoke
FLIGHT=$(ls /tmp/surw-obs-smoke/flight_*.json)
go run ./cmd/surwobs -check-flight "$FLIGHT"
go run ./cmd/surwrun -replay-flight "$FLIGHT"

# Campaign persistence smoke: a tiny two-cell campaign killed after its
# first cell must, on resume at a different worker count, produce
# byte-identical aggregates to an uninterrupted run (crash-safe run-store;
# see internal/campaign).
rm -rf /tmp/surw-campaign
mkdir -p /tmp/surw-campaign
go build -ldflags "-X surw/internal/buildinfo.Version=ci-smoke" -o /tmp/surw-campaign/surwbench ./cmd/surwbench
go build -ldflags "-X surw/internal/buildinfo.Version=ci-smoke" -o /tmp/surw-campaign/surwdash ./cmd/surwdash
/tmp/surw-campaign/surwbench -version | grep -q 'ci-smoke'
CELLS='-sct-targets CS/reorder_4 -sct-algs SURW,RW -sessions 3 -limit 300'
# Uninterrupted reference at 2 workers.
/tmp/surw-campaign/surwbench -campaign /tmp/surw-campaign/ref -workers 2 $CELLS -q sct > /dev/null
# Interrupted run: the crash-injection flag kills the process (exit 3)
# after the first completed cell.
if /tmp/surw-campaign/surwbench -campaign /tmp/surw-campaign/res -workers 1 $CELLS -stop-after-cells 1 -q sct > /dev/null 2>&1; then
    echo "FAIL: -stop-after-cells did not kill the campaign"
    exit 1
fi
test ! -f /tmp/surw-campaign/res/aggregates.json
# Resume at 4 workers: completed sessions are skipped, the rest execute,
# and the final aggregates must be byte-identical to the reference.
/tmp/surw-campaign/surwbench -campaign /tmp/surw-campaign/res -workers 4 $CELLS -q sct > /dev/null
cmp /tmp/surw-campaign/ref/aggregates.json /tmp/surw-campaign/res/aggregates.json

# Dashboard smoke: serve the finished campaign read-only and validate every
# endpoint — Prometheus content type, JSON aggregates, one SSE event, build
# identity.
/tmp/surw-campaign/surwdash -store /tmp/surw-campaign/ref -addr 127.0.0.1:18099 > /tmp/surw-campaign/dash.log 2>&1 &
DASH_PID=$!
trap 'kill $DASH_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18099/buildinfo > /dev/null 2>&1 && break
    sleep 0.2
done
curl -si http://127.0.0.1:18099/metrics | grep -i '^content-type: text/plain; version=0.0.4'
curl -s http://127.0.0.1:18099/metrics | grep -q '^surw_campaign_sessions_stored 6$'
curl -s http://127.0.0.1:18099/api/campaign | grep -q '"sessions": 6'
curl -s http://127.0.0.1:18099/buildinfo | grep -q '"version": "ci-smoke"'
curl -sN --max-time 2 http://127.0.0.1:18099/events > /tmp/surw-campaign/sse.txt || true
grep -q '^event: snapshot' /tmp/surw-campaign/sse.txt
kill $DASH_PID 2>/dev/null || true
trap - EXIT

# Distributed campaign smoke: shard a campaign over a coordinator and two
# loopback workers, kill one worker mid-run (its leases expire and requeue
# on the survivor), and require the final aggregates to be byte-identical
# to a single-process run of the same campaign — distribution, like
# crash/resume, must be an execution-order change only. The grid is larger
# than the resume smoke's (200 sessions, batched one per lease) so the
# kill reliably lands while leases are in flight.
go build -ldflags "-X surw/internal/buildinfo.Version=ci-smoke" -o /tmp/surw-campaign/surwworker ./cmd/surwworker
DCELLS='-sct-targets CS/reorder_4 -sct-algs SURW,RW -sessions 100 -limit 300'
/tmp/surw-campaign/surwbench -campaign /tmp/surw-campaign/dref -workers 4 $DCELLS -q sct > /dev/null
/tmp/surw-campaign/surwbench -coordinate 127.0.0.1:18071 -campaign /tmp/surw-campaign/dist \
    -lease-ttl 2s -lease-batch 1 $DCELLS -q sct > /dev/null &
COORD_PID=$!
trap 'kill $COORD_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18071/v1/status > /dev/null 2>&1 && break
    sleep 0.2
done
curl -s http://127.0.0.1:18071/metrics | grep -q '^surw_remote_sessions_planned 200$'
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18071 -name doomed -workers 1 -q &
DOOMED_PID=$!
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18071 -name survivor -workers 2 -q &
SURVIVOR_PID=$!
sleep 0.3
kill -9 $DOOMED_PID 2>/dev/null || true
wait $SURVIVOR_PID
wait $COORD_PID
trap - EXIT
cmp /tmp/surw-campaign/dref/aggregates.json /tmp/surw-campaign/dist/aggregates.json

# Schedule-equivalence dedup smoke: the Figure 1 bitshift coverage probe
# under URW and RW, sharded over a coordinator and two loopback workers.
# Class fingerprints ride the session records, so the deduplicated
# aggregates (the dedup block: distinct classes, duplicate rate,
# Good-Turing/Chao1) must be byte-identical to a local run's, and with
# 3x200 schedules over the probe's C(8,4)=70 classes the duplicate rate
# must be genuinely nonzero — which the dashboard served over the
# distributed store must report.
KCELLS='-sct-targets Fig1/bitshift_4 -sct-algs URW,RW -sessions 3 -limit 200 -sct-coverage'
/tmp/surw-campaign/surwbench -campaign /tmp/surw-campaign/kref -workers 2 $KCELLS -q sct > /dev/null
/tmp/surw-campaign/surwbench -coordinate 127.0.0.1:18072 -campaign /tmp/surw-campaign/kdist \
    -lease-batch 2 $KCELLS -q sct > /tmp/surw-campaign/kdist.log 2>&1 &
COORD_PID=$!
trap 'kill $COORD_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18072/v1/status > /dev/null 2>&1 && break
    sleep 0.2
done
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18072 -name k1 -workers 2 -q &
K1_PID=$!
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18072 -name k2 -workers 2 -q &
K2_PID=$!
wait $K1_PID
wait $K2_PID
wait $COORD_PID
trap - EXIT
cmp /tmp/surw-campaign/kref/aggregates.json /tmp/surw-campaign/kdist/aggregates.json
grep -q '"dedup"' /tmp/surw-campaign/kdist/aggregates.json
# surwbench prints the per-cell dedup footer after writing aggregates.
grep -q 'duplicate rate' /tmp/surw-campaign/kdist.log
# The dashboard over the distributed store must expose a nonzero
# campaign-wide duplicate rate and the per-cell gauge for the probe.
/tmp/surw-campaign/surwdash -store /tmp/surw-campaign/kdist -addr 127.0.0.1:18073 > /dev/null 2>&1 &
DASH_PID=$!
trap 'kill $DASH_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18073/buildinfo > /dev/null 2>&1 && break
    sleep 0.2
done
curl -s http://127.0.0.1:18073/metrics > /tmp/surw-campaign/kmetrics.txt
grep -q 'surw_campaign_cell_duplicate_rate{target="Fig1/bitshift_4"' /tmp/surw-campaign/kmetrics.txt
DUPRATE=$(awk '/^surw_campaign_duplicate_rate /{print $2}' /tmp/surw-campaign/kmetrics.txt)
awk -v r="$DUPRATE" 'BEGIN { exit (r > 0 ? 0 : 1) }'
kill $DASH_PID 2>/dev/null || true
trap - EXIT

# Fleet tracing smoke: the same bitshift campaign once more, now with
# distributed tracing on (-fleet-trace) and the full worker observability
# surface exercised (-metrics, -trace, -watchdog). Two invariants, both
# sides of the DESIGN §12 covenant:
#   1. aggregates.json is byte-identical to the untraced local reference
#      (kref above) — tracing perturbs nothing;
#   2. surwobs assembles at least one complete lease→submit trace from
#      the coordinator's span log — tracing observed everything.
# The disabled-path cost is pinned elsewhere: the pooled allocs gate above
# runs with the nil tracer, and TestNilSpanLogZeroAllocs holds the nil
# SpanLog at exactly zero allocs/op.
/tmp/surw-campaign/surwbench -coordinate 127.0.0.1:18074 -campaign /tmp/surw-campaign/tdist \
    -lease-batch 2 -fleet-trace /tmp/surw-campaign/fleet.spans.jsonl \
    $KCELLS -q sct > /tmp/surw-campaign/tdist.log 2>&1 &
COORD_PID=$!
trap 'kill $COORD_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18074/v1/status > /dev/null 2>&1 && break
    sleep 0.2
done
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18074 -name t1 -workers 2 \
    -metrics 127.0.0.1:18075 -trace /tmp/surw-campaign/t1.spans.jsonl -watchdog 60s -q &
T1_PID=$!
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18074 -name t2 -workers 2 -q &
T2_PID=$!
wait $T1_PID
wait $T2_PID
wait $COORD_PID
trap - EXIT
cmp /tmp/surw-campaign/kref/aggregates.json /tmp/surw-campaign/tdist/aggregates.json
# The traced worker wrote its local span view.
test -s /tmp/surw-campaign/t1.spans.jsonl
# Assemble the fleet log: exits non-zero unless >=1 trace is complete
# (single lease root, resolving parents, session/prefix-replay/submit
# spans, >=2 tracks). Then render it and hold the rendering to the same
# Chrome trace_event validation the decision traces pass.
go run ./cmd/surwobs -assemble-trace /tmp/surw-campaign/fleet.spans.jsonl \
    -out /tmp/surw-campaign/fleet.json
go run ./cmd/surwobs -check-trace /tmp/surw-campaign/fleet.json

# Exploration-atlas smoke: the bitshift coverage grid once more with the
# atlas attached. Three invariants:
#   1. aggregates.json stays byte-identical to the atlas-less reference
#      (kref) — cartography observes, never perturbs;
#   2. surwobs validates the atlas.json export and renders the SVG atlas;
#   3. the drift verdicts are right: URW really is uniform over the
#      probe's 70 classes (ok), while RW — literally the unweighted
#      random walk the paper corrects — is biased enough that 600
#      samples trip the chi-square drift alarm (DRIFT).
/tmp/surw-campaign/surwbench -campaign /tmp/surw-campaign/atl -workers 2 -atlas $KCELLS -q sct \
    > /tmp/surw-campaign/atl.log 2>&1
cmp /tmp/surw-campaign/kref/aggregates.json /tmp/surw-campaign/atl/aggregates.json
test -s /tmp/surw-campaign/atl/atlas.json
go run ./cmd/surwobs -atlas /tmp/surw-campaign/atl/atlas.json \
    -out /tmp/surw-campaign/atl.svg > /tmp/surw-campaign/atl-cells.txt
grep '<svg' /tmp/surw-campaign/atl.svg > /dev/null
grep 'atlas cell Fig1/bitshift_4/URW: .* ok$' /tmp/surw-campaign/atl-cells.txt
grep 'atlas cell Fig1/bitshift_4/RW: .* DRIFT$' /tmp/surw-campaign/atl-cells.txt

# Yield-guided leasing smoke: the same grid sharded over a coordinator with
# -yield-leases and two atlas-carrying workers. The weighted draw reorders
# grants (nonzero yield-weighted count) but sessions are deterministic, so
# aggregates stay byte-identical to the local reference; the coordinator
# merges the workers' atlases into DIR/atlas.json, and the dashboard served
# over the finished store renders the heatmap, depth profile, uniformity
# gauges, and yield panel from it.
/tmp/surw-campaign/surwbench -coordinate 127.0.0.1:18076 -campaign /tmp/surw-campaign/ydist \
    -lease-batch 2 -yield-leases $KCELLS -q sct > /tmp/surw-campaign/ydist.log 2>&1 &
COORD_PID=$!
trap 'kill $COORD_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18076/v1/status > /dev/null 2>&1 && break
    sleep 0.2
done
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18076 -name y1 -workers 2 -atlas -q &
Y1_PID=$!
/tmp/surw-campaign/surwworker -coordinator http://127.0.0.1:18076 -name y2 -workers 2 -atlas -q &
Y2_PID=$!
wait $Y1_PID
wait $Y2_PID
wait $COORD_PID
trap - EXIT
cmp /tmp/surw-campaign/kref/aggregates.json /tmp/surw-campaign/ydist/aggregates.json
grep -E 'coordinator: [1-9][0-9]* yield-weighted grants' /tmp/surw-campaign/ydist.log
test -s /tmp/surw-campaign/ydist/atlas.json
go run ./cmd/surwobs -atlas /tmp/surw-campaign/ydist/atlas.json > /tmp/surw-campaign/ydist-cells.txt
grep 'atlas cell Fig1/bitshift_4/RW: .* DRIFT$' /tmp/surw-campaign/ydist-cells.txt
/tmp/surw-campaign/surwdash -store /tmp/surw-campaign/ydist -addr 127.0.0.1:18077 > /dev/null 2>&1 &
DASH_PID=$!
trap 'kill $DASH_PID 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18077/buildinfo > /dev/null 2>&1 && break
    sleep 0.2
done
curl -s http://127.0.0.1:18077/ > /tmp/surw-campaign/ydash.html
grep -q 'exploration atlas' /tmp/surw-campaign/ydash.html
grep -q 'atlas-heatmap' /tmp/surw-campaign/ydash.html
grep -q 'atlas-depth' /tmp/surw-campaign/ydash.html
grep -q 'discovery yield' /tmp/surw-campaign/ydash.html
grep -q 'uniformity p' /tmp/surw-campaign/ydash.html
curl -s http://127.0.0.1:18077/api/yield | grep -q '"cells"'
curl -s http://127.0.0.1:18077/metrics > /tmp/surw-campaign/ymetrics.txt
grep -q 'surw_yield_score{target="Fig1/bitshift_4"' /tmp/surw-campaign/ymetrics.txt
grep -q 'surw_atlas_uniformity_p{target="Fig1/bitshift_4"' /tmp/surw-campaign/ymetrics.txt
grep -q 'surw_atlas_drift_alarm{target="Fig1/bitshift_4",algorithm="RW"} 1' /tmp/surw-campaign/ymetrics.txt
kill $DASH_PID 2>/dev/null || true
trap - EXIT

# surwport smoke: the real-Go-code pipeline end to end (DESIGN §14).
#   1. Re-port the stdlib worker pool and require the output to match the
#      committed examples/workerpool/ported byte-for-byte — the committed
#      port is never allowed to drift from what the tool emits.
#   2. Run the ported pool as a campaign cell through the surwsync binding
#      frontend and require SURW to find the seeded lost-wakeup deadlock.
#   3. Re-run the cell at a different worker count and require
#      byte-identical aggregates — the goroutine-binding registry must not
#      break the runner's confinement model.
rm -rf /tmp/surw-port
mkdir -p /tmp/surw-port
go run ./cmd/surwport -src examples/workerpool/pool -dst /tmp/surw-port/ported
for f in examples/workerpool/ported/*.go; do
    cmp "$f" "/tmp/surw-port/ported/$(basename "$f")"
done
go run ./examples/workerpool > /tmp/surw-port/demo.txt
grep -q 'bug "deadlock" found at schedule' /tmp/surw-port/demo.txt
grep -q 'replayed: deadlock' /tmp/surw-port/demo.txt
WPCELLS='-sct-targets WP/pool_2w2j -sct-algs SURW,RW -sessions 3 -limit 300'
/tmp/surw-campaign/surwbench -campaign /tmp/surw-port/w2 -workers 2 $WPCELLS -q sct > /dev/null
/tmp/surw-campaign/surwbench -campaign /tmp/surw-port/w1 -workers 1 $WPCELLS -q sct > /dev/null
cmp /tmp/surw-port/w2/aggregates.json /tmp/surw-port/w1/aggregates.json
grep -q '"deadlock"' /tmp/surw-port/w2/aggregates.json

# Fuzz smoke: a short coverage-guided run of each native fuzz target (the
# full checked-in seed corpora already ran as part of `go test` above).
FUZZTIME=10s make fuzz-smoke
