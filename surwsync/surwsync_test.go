package surwsync_test

// Differential tests for the surwsync shim: the same shimmed program is
// run under the controlled scheduler and, untouched, on the real sync
// primitives (this package is in ci.sh's -race list, so the fallback path
// is validated under the race detector), and both must compute the same
// result. Plus fallback-delegation, per-schedule freshness, determinism,
// and binding-leak checks.

import (
	"testing"

	"surw"
	"surw/internal/sched"
	"surw/surwsync"
)

// sumPool is the shared differential workload: an ordinary Go worker pool
// written only against surwsync, summing 1..jobs across workers mutex-
// protected. Correct final total in every interleaving: jobs*(jobs+1)/2.
func sumPool(workers, jobs int) int {
	var mu surwsync.Mutex
	var wg surwsync.WaitGroup
	ch := surwsync.NewChan[int](jobs)
	total := 0
	for i := 0; i < workers; i++ {
		wg.Add(1)
		surwsync.Go(func() {
			defer wg.Done()
			for {
				v, ok := ch.Recv()
				if !ok {
					return
				}
				mu.Lock()
				total += v
				mu.Unlock()
			}
		})
	}
	for j := 1; j <= jobs; j++ {
		ch.Send(j)
	}
	ch.Close()
	wg.Wait()
	return total
}

func TestDifferentialControlledVsReal(t *testing.T) {
	const workers, jobs = 2, 4
	want := jobs * (jobs + 1) / 2

	// Real mode: no session anywhere in this call chain, so every
	// primitive delegates to sync/native channels (raced by ci.sh).
	if got := sumPool(workers, jobs); got != want {
		t.Fatalf("real sync: total = %d, want %d", got, want)
	}

	// Controlled mode: the identical function, across many schedules.
	prog := surwsync.Program(func() {
		if got := sumPool(workers, jobs); got != want {
			panic("controlled: wrong total")
		}
	})
	ex, err := surw.Explore(prog, surw.Options{Schedules: 60, Algorithm: "RW"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Failures) != 0 {
		t.Fatalf("controlled schedules failed: %v", ex.Failures)
	}
	// The shim must actually expose scheduling choice, not serialize the
	// program one way: distinct interleavings must be witnessed.
	if len(ex.Interleavings) < 2 {
		t.Fatalf("shimmed pool explored only %d interleaving(s)", len(ex.Interleavings))
	}
}

func TestControlledDeterministicReplay(t *testing.T) {
	prog := surwsync.Program(func() { sumPool(2, 3) })
	a := surw.Run(prog, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: 11}})
	b := surw.Run(prog, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: 11}})
	if a.InterleavingHash != b.InterleavingHash {
		t.Fatalf("same seed, different interleavings: %x vs %x", a.InterleavingHash, b.InterleavingHash)
	}
	c := surw.Run(prog, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: 12}, RecordTrace: true})
	if len(c.Trace) == 0 {
		t.Fatal("shimmed program produced no scheduled events")
	}
}

// TestFallbackDelegation drives each primitive with real goroutines and no
// session: everything must behave like its sync counterpart.
func TestFallbackDelegation(t *testing.T) {
	var mu surwsync.Mutex
	if !mu.TryLock() {
		t.Fatal("TryLock on free fallback mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held fallback mutex succeeded")
	}
	mu.Unlock()

	var rw surwsync.RWMutex
	rw.RLock()
	if rw.TryLock() {
		t.Fatal("write TryLock with active reader succeeded")
	}
	if !rw.TryRLock() {
		t.Fatal("TryRLock with only readers failed")
	}
	rw.RUnlock()
	rw.RUnlock()

	calls := 0
	var once surwsync.Once
	var wg surwsync.WaitGroup
	ch := surwsync.NewChan[int](0)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		surwsync.Go(func() {
			defer wg.Done()
			once.Do(func() { calls++ })
			ch.Send(1)
		})
	}
	got := 0
	for i := 0; i < 3; i++ {
		v, ok := ch.Recv()
		if !ok {
			t.Fatal("unexpected close")
		}
		got += v
	}
	wg.Wait()
	if got != 3 || calls != 1 {
		t.Fatalf("fallback: got = %d (want 3), once calls = %d (want 1)", got, calls)
	}
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on drained fallback channel succeeded")
	}
}

// Fallback TrySend: fails on an unbuffered channel with no receiver,
// succeeds into free buffer space.
func TestFallbackTrySendUnbuffered(t *testing.T) {
	ch := surwsync.NewChan[int](0)
	if ch.TrySend(1) {
		t.Fatal("unbuffered TrySend with no receiver succeeded")
	}
	bch := surwsync.NewChan[int](1)
	if !bch.TrySend(1) || bch.Len() != 1 {
		t.Fatal("buffered TrySend failed")
	}
}

// TestFreshStatePerSchedule: a primitive shared across schedules is backed
// by a fresh scheduler object each schedule — a mutex left locked at the
// end of one schedule is free at the start of the next.
func TestFreshStatePerSchedule(t *testing.T) {
	var m surwsync.Mutex
	prog := surwsync.Program(func() {
		if !m.TryLock() {
			panic("stale lock state leaked into a new schedule")
		}
		// Deliberately never unlocked.
	})
	for s := int64(1); s <= 3; s++ {
		res := surw.Run(prog, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: s}})
		if res.Buggy() {
			t.Fatalf("schedule with seed %d failed: %v", s, res.Failure)
		}
	}
	// And per-schedule Once: Do fires once per schedule, not once ever.
	calls := 0
	var once surwsync.Once
	oprog := surwsync.Program(func() {
		once.Do(func() { calls++ })
		once.Do(func() { calls += 100 }) // same schedule: must not run
	})
	for s := int64(1); s <= 2; s++ {
		if res := surw.Run(oprog, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: s}}); res.Buggy() {
			t.Fatalf("once schedule failed: %v", res.Failure)
		}
	}
	if calls != 2 {
		t.Fatalf("Once.Do calls across 2 schedules = %d, want 2", calls)
	}
}

// TestRWMutexControlled exercises the reader/writer shim under the
// scheduler: concurrent readers are admitted, the writer excludes them.
func TestRWMutexControlled(t *testing.T) {
	prog := surwsync.Program(func() {
		var rw surwsync.RWMutex
		var wg surwsync.WaitGroup
		data, snap := 0, -1
		wg.Add(2)
		surwsync.Go(func() {
			defer wg.Done()
			rw.Lock()
			data = 42
			rw.Unlock()
		})
		surwsync.Go(func() {
			defer wg.Done()
			rw.RLock()
			snap = data
			rw.RUnlock()
		})
		wg.Wait()
		if snap != 0 && snap != 42 {
			panic("torn read through RWMutex shim")
		}
	})
	ex, err := surw.Explore(prog, surw.Options{Schedules: 40, Algorithm: "RW"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Failures) != 0 {
		t.Fatalf("failures: %v", ex.Failures)
	}
	if len(ex.Interleavings) < 2 {
		t.Fatalf("only %d interleavings", len(ex.Interleavings))
	}
}

// TestNoBindingLeak: after sessions finish (including schedules that kill
// threads mid-body), no goroutine binding survives.
func TestNoBindingLeak(t *testing.T) {
	prog := surwsync.Program(func() {
		var wg surwsync.WaitGroup
		ch := surwsync.NewChan[int](0)
		wg.Add(1)
		surwsync.Go(func() {
			defer wg.Done()
			ch.Recv() // blocks forever: the schedule ends with this thread parked
		})
		_ = ch
	})
	res := surw.Run(prog, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: 1}})
	if res.Failure == nil || res.Failure.Kind != sched.FailDeadlock {
		t.Fatalf("expected deadlock from orphaned receiver, got %+v", res.Failure)
	}
	if n := sched.Bindings(); n != 0 {
		t.Fatalf("%d goroutine bindings leaked", n)
	}
}

// TestGoFallback: Go outside a session is a plain goroutine.
func TestGoFallback(t *testing.T) {
	done := make(chan int, 1)
	surwsync.Go(func() { done <- 7 })
	if v := <-done; v != 7 {
		t.Fatalf("got %d", v)
	}
	surwsync.Gosched() // no session: must be a no-op, not a panic
}
