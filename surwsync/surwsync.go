package surwsync

import (
	"sync"

	"surw/internal/sched"
)

// Program adapts a zero-argument shimmed program into a surw program: it
// binds the root virtual thread to the calling goroutine for the duration
// of fn, so every surwsync primitive fn touches (directly or in packages
// it calls) runs under the controlled scheduler.
//
//	report, err := surw.Test(surwsync.Program(run), opts)
func Program(fn func()) func(*sched.Thread) {
	return func(t *sched.Thread) {
		sched.BindGoroutine(t)
		defer sched.UnbindGoroutine()
		fn()
	}
}

// Go is the shim for the go statement. Under a session it spawns a virtual
// thread (scheduled like any other; the spawn itself is not an event, as
// in the paper's runtime) and binds it to fn's goroutine; outside a
// session it is exactly `go fn()`.
//
// Note one porting caveat: `go f(x)` evaluates x at spawn time, while the
// ported `surwsync.Go(func() { f(x) })` evaluates it when the child first
// runs. Capture loop variables explicitly if the original relied on
// spawn-time evaluation.
func Go(fn func()) {
	if t, ok := sched.CurrentThread(); ok {
		t.Go(func(c *sched.Thread) {
			sched.BindGoroutine(c)
			defer sched.UnbindGoroutine()
			fn()
		})
		return
	}
	go fn()
}

// Gosched is the shim for runtime.Gosched: a pure scheduling point under a
// session, a no-op outside one (the real Gosched is a hint; dropping it
// preserves semantics).
func Gosched() {
	if t, ok := sched.CurrentThread(); ok {
		t.Yield()
	}
}

// Mutex is a drop-in sync.Mutex. The zero value is an unlocked mutex.
type Mutex struct {
	real  sync.Mutex
	cache sched.ShimCache
}

func (m *Mutex) sched(t *sched.Thread) *sched.Mutex {
	return m.cache.Resolve(t, func(t *sched.Thread) any {
		return t.NewMutex("surwsync.Mutex")
	}).(*sched.Mutex)
}

// Lock locks m, as sync.Mutex.Lock.
func (m *Mutex) Lock() {
	if t, ok := sched.CurrentThread(); ok {
		m.sched(t).Lock(t)
		return
	}
	m.real.Lock()
}

// Unlock unlocks m, as sync.Mutex.Unlock.
func (m *Mutex) Unlock() {
	if t, ok := sched.CurrentThread(); ok {
		m.sched(t).Unlock(t)
		return
	}
	m.real.Unlock()
}

// TryLock tries to lock m and reports whether it succeeded, as
// sync.Mutex.TryLock.
func (m *Mutex) TryLock() bool {
	if t, ok := sched.CurrentThread(); ok {
		return m.sched(t).TryLock(t)
	}
	return m.real.TryLock()
}

// RWMutex is a drop-in sync.RWMutex. The zero value is an unlocked lock.
type RWMutex struct {
	real  sync.RWMutex
	cache sched.ShimCache
}

func (m *RWMutex) sched(t *sched.Thread) *sched.RWMutex {
	return m.cache.Resolve(t, func(t *sched.Thread) any {
		return t.NewRWMutex("surwsync.RWMutex")
	}).(*sched.RWMutex)
}

// Lock acquires the write lock.
func (m *RWMutex) Lock() {
	if t, ok := sched.CurrentThread(); ok {
		m.sched(t).Lock(t)
		return
	}
	m.real.Lock()
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() {
	if t, ok := sched.CurrentThread(); ok {
		m.sched(t).Unlock(t)
		return
	}
	m.real.Unlock()
}

// RLock acquires a read lock.
func (m *RWMutex) RLock() {
	if t, ok := sched.CurrentThread(); ok {
		m.sched(t).RLock(t)
		return
	}
	m.real.RLock()
}

// RUnlock releases a read lock.
func (m *RWMutex) RUnlock() {
	if t, ok := sched.CurrentThread(); ok {
		m.sched(t).RUnlock(t)
		return
	}
	m.real.RUnlock()
}

// TryLock tries to acquire the write lock.
func (m *RWMutex) TryLock() bool {
	if t, ok := sched.CurrentThread(); ok {
		return m.sched(t).TryLock(t)
	}
	return m.real.TryLock()
}

// TryRLock tries to acquire a read lock.
func (m *RWMutex) TryRLock() bool {
	if t, ok := sched.CurrentThread(); ok {
		return m.sched(t).TryRLock(t)
	}
	return m.real.TryRLock()
}

// WaitGroup is a drop-in sync.WaitGroup. The zero value is ready to use.
type WaitGroup struct {
	real  sync.WaitGroup
	cache sched.ShimCache
}

func (wg *WaitGroup) sched(t *sched.Thread) *sched.WaitGroup {
	return wg.cache.Resolve(t, func(t *sched.Thread) any {
		return t.NewWaitGroup("surwsync.wg")
	}).(*sched.WaitGroup)
}

// Add adds delta to the counter, as sync.WaitGroup.Add.
func (wg *WaitGroup) Add(delta int) {
	if t, ok := sched.CurrentThread(); ok {
		wg.sched(t).Add(t, delta)
		return
	}
	wg.real.Add(delta)
}

// Done decrements the counter.
func (wg *WaitGroup) Done() {
	if t, ok := sched.CurrentThread(); ok {
		wg.sched(t).Done(t)
		return
	}
	wg.real.Done()
}

// Wait blocks until the counter is zero.
func (wg *WaitGroup) Wait() {
	if t, ok := sched.CurrentThread(); ok {
		wg.sched(t).Wait(t)
		return
	}
	wg.real.Wait()
}

// Once is a drop-in sync.Once. The zero value is ready to use.
type Once struct {
	real  sync.Once
	cache sched.ShimCache
}

func (o *Once) sched(t *sched.Thread) *sched.Once {
	return o.cache.Resolve(t, func(t *sched.Thread) any {
		return t.NewOnce("surwsync.Once")
	}).(*sched.Once)
}

// Do calls f exactly once (per schedule, under a session), as
// sync.Once.Do.
func (o *Once) Do(f func()) {
	if t, ok := sched.CurrentThread(); ok {
		o.sched(t).Do(t, f)
		return
	}
	o.real.Do(f)
}
