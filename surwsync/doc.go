// Package surwsync is a drop-in stand-in for the sync package and for
// channels, letting real Go code — code written against sync.Mutex,
// sync.WaitGroup, go statements, and chan operations — run under surw's
// controlled scheduler without threading a *surw.Thread through every
// call.
//
// The package has two modes, chosen per call site at runtime:
//
//   - Under a controlled session (the code was started through
//     [Program] and its goroutines through [Go]), every primitive
//     resolves the virtual thread bound to the calling goroutine and
//     turns each operation into a scheduled event on a scheduler-owned
//     object. The schedule space of the program becomes explorable by
//     SURW and the baseline algorithms, and any failure is replayable
//     by seed.
//
//   - Outside a session (ordinary production or `go test` execution),
//     every primitive transparently delegates to the real sync type or
//     a native channel. The only cost on this path is one atomic load
//     per operation when no controlled session exists anywhere in the
//     process.
//
// Porting is mechanical — cmd/surwport automates it for whole packages:
//
//	sync.Mutex      -> surwsync.Mutex      (zero value ready, as stdlib)
//	sync.RWMutex    -> surwsync.RWMutex
//	sync.WaitGroup  -> surwsync.WaitGroup
//	sync.Once       -> surwsync.Once
//	go f()          -> surwsync.Go(func() { f() })
//	make(chan T, n) -> surwsync.NewChan[T](n)
//	ch <- v         -> ch.Send(v)
//	v := <-ch       -> v := ch.Recv1()
//	v, ok := <-ch   -> v, ok := ch.Recv()
//	close(ch)       -> ch.Close()
//	runtime.Gosched -> surwsync.Gosched
//
// A shimmed program is hooked to the tester through Program:
//
//	report, err := surw.Test(surwsync.Program(func() {
//	    p := pool.New(2)        // ordinary Go code using surwsync inside
//	    p.Submit(job)
//	    p.Close()
//	}), surw.Options{Schedules: 2000})
//
// # Rules under a session
//
// Every goroutine of the program under test must be spawned through
// [Go]. A raw go statement creates a goroutine with no virtual-thread
// binding: its primitive operations fall back to the real
// implementations and are invisible to (and unserialized with) the
// scheduler. For the same reason a shimmed primitive must not be shared
// between code under a session and unrelated goroutines outside it.
//
// Zero-value primitives are backed lazily: the first operation of each
// schedule creates the scheduler object. State therefore resets between
// schedules — exactly right for a program that is itself re-run from
// scratch each schedule, but a reason not to smuggle state across
// schedules through a package-level primitive. Lazy creation also means
// the auto-assigned object names ("surwsync.Mutex#3") depend on which
// thread's first operation created the object, so under a
// schedule-dependent first touch the same primitive may be named
// differently in different schedules; name-keyed Δ selections for
// shimmed programs should prefer channel objects created eagerly by
// [NewChan] from a deterministic constructor.
package surwsync
