package surwsync

import "surw/internal/sched"

// Chan is a drop-in Go channel. Under a controlled session its operations
// are scheduled events on a sched.Chan; outside one they act on a native
// channel created at construction. Unlike the lock shims a Chan has a
// constructor (mirroring make(chan T, n)), so under a session the backing
// scheduler object is created eagerly at the NewChan call when a binding
// is active — constructor order is program order, which keeps the
// object's auto-assigned name stable across schedules.
//
// A nil *Chan panics on use (a nil native channel blocks forever); ported
// code that parks on nil channels must be restructured.
type Chan[T any] struct {
	capacity int
	real     chan T
	cache    sched.ShimCache
}

// NewChan mirrors make(chan T, capacity); capacity 0 is an unbuffered
// rendezvous channel.
func NewChan[T any](capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	c := &Chan[T]{capacity: capacity, real: make(chan T, capacity)}
	if t, ok := sched.CurrentThread(); ok {
		c.sched(t) // eager: deterministic creation order (see type doc)
	}
	return c
}

func (c *Chan[T]) sched(t *sched.Thread) *sched.Chan[T] {
	return c.cache.Resolve(t, func(t *sched.Thread) any {
		return sched.NewChan[T](t, "surwsync.chan", c.capacity)
	}).(*sched.Chan[T])
}

// Cap mirrors cap(ch).
func (c *Chan[T]) Cap() int { return c.capacity }

// Len mirrors len(ch).
func (c *Chan[T]) Len() int {
	if t, ok := sched.CurrentThread(); ok {
		return c.sched(t).Len()
	}
	return len(c.real)
}

// Send mirrors ch <- v, blocking by Go's rules. Sending on a closed
// channel panics (a program failure under a session).
func (c *Chan[T]) Send(v T) {
	if t, ok := sched.CurrentThread(); ok {
		c.sched(t).Send(t, v)
		return
	}
	c.real <- v
}

// TrySend mirrors a select with a send case and a default: it reports
// whether v was accepted without blocking.
func (c *Chan[T]) TrySend(v T) bool {
	if t, ok := sched.CurrentThread(); ok {
		return c.sched(t).TrySend(t, v)
	}
	select {
	case c.real <- v:
		return true
	default:
		return false
	}
}

// Recv mirrors v, ok := <-ch: ok is false iff the channel is closed and
// drained.
func (c *Chan[T]) Recv() (T, bool) {
	if t, ok := sched.CurrentThread(); ok {
		return c.sched(t).Recv(t)
	}
	v, ok := <-c.real
	return v, ok
}

// Recv1 mirrors the single-valued v := <-ch (the zero value after close,
// as in Go).
func (c *Chan[T]) Recv1() T {
	v, _ := c.Recv()
	return v
}

// TryRecv mirrors a select with a receive case and a default: ok is false
// when nothing was immediately available (open-and-empty and
// closed-and-drained are not distinguished, matching sched.Chan).
func (c *Chan[T]) TryRecv() (T, bool) {
	if t, ok := sched.CurrentThread(); ok {
		return c.sched(t).TryRecv(t)
	}
	select {
	case v, ok := <-c.real:
		return v, ok
	default:
		var zero T
		return zero, false
	}
}

// Close mirrors close(ch); closing twice panics.
func (c *Chan[T]) Close() {
	if t, ok := sched.CurrentThread(); ok {
		c.sched(t).Close(t)
		return
	}
	close(c.real)
}
