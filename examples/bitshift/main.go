// Bitshift reproduces the paper's Figure 1 and Figure 2 inline: two
// threads atomically append bits to a shared variable, giving C(10,5) = 252
// distinct interleavings, each with a distinct final value. Uniform Random
// Walk (URW) samples them uniformly; naive Random Walk and PCT-10 are
// heavily skewed. The program prints the distribution statistics and a
// compressed histogram for each algorithm.
//
//	go run ./examples/bitshift
package main

import (
	"fmt"
	"math"
	"sort"

	"surw"
)

const k = 5 // bit-appends per thread; 252 interleavings

func bitshift(t *surw.Thread) {
	x := t.NewVar("x", 1)
	a := t.Go(func(w *surw.Thread) {
		for i := 0; i < k; i++ {
			x.Update(w, func(v int64) int64 { return v << 1 }) // append 0
		}
	})
	b := t.Go(func(w *surw.Thread) {
		for i := 0; i < k; i++ {
			x.Update(w, func(v int64) int64 { return v<<1 + 1 }) // append 1
		}
	})
	t.Join(a)
	t.Join(b)
	t.SetBehavior(fmt.Sprintf("%010b", x.Peek()&(1<<(2*k)-1)))
}

func main() {
	const trials = 25_200 // 100 per class under perfect uniformity

	for _, alg := range []string{"URW", "RW", "PCT-10"} {
		ex, err := surw.Explore(bitshift, surw.Options{Base: surw.Base{Seed: 1}, Schedules: trials, Algorithm: alg})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d distinct outcomes of 252, entropy %.2f bits (uniform = %.2f)\n",
			alg, len(ex.Behaviors), ex.BehaviorEntropy(), math.Log2(252))
		printSparkline(ex.Behaviors)
	}
}

// printSparkline renders the 252-class histogram as a compact profile:
// classes sorted by key, counts bucketed into height levels.
func printSparkline(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	levels := []byte(" .:-=+*#%@")
	line := make([]byte, 0, len(keys))
	for _, key := range keys {
		lvl := counts[key] * (len(levels) - 1) / peak
		line = append(line, levels[lvl])
	}
	fmt.Printf("  [%s]\n  (each column one outcome, height = sample count; peak %d)\n\n", line, peak)
}
