// Quickstart: find a classic lost-update bug with SURW.
//
// The program under test is a bank balance mutated by a locked deposit and
// an unlocked withdrawal: under most schedules the final balance is right,
// but an interleaving that splits the withdrawal's read-modify-write loses
// the deposit. surw.Test profiles the program once, picks interesting
// events automatically, and hunts for a failing schedule; the failure is
// then replayed deterministically to print its exact event trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"surw"
)

func account(t *surw.Thread) {
	mu := t.NewMutex("mu")
	balance := t.NewVar("balance", 100)

	deposit := t.Go(func(w *surw.Thread) {
		mu.Lock(w)
		balance.Store(w, balance.Load(w)+50)
		mu.Unlock(w)
	})
	withdraw := t.Go(func(w *surw.Thread) {
		// Bug: the lock is missing, so the load/store pair can straddle
		// the deposit and lose it.
		balance.Store(w, balance.Load(w)-30)
	})
	t.Join(deposit)
	t.Join(withdraw)

	t.Assert(balance.Peek() == 120, "lost-update")
}

func main() {
	opts := surw.Options{Base: surw.Base{Seed: 7}, Schedules: 1000}
	report, err := surw.Test(account, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	if !report.Found() {
		return
	}

	// Replay the failing schedule deterministically and show its trace.
	res, err := surw.Replay(account, report, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed: %v\n", res.Failure)
	fmt.Println("failing interleaving:")
	for _, ev := range res.Trace {
		fmt.Printf("  %v\n", ev)
	}
}
