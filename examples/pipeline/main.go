// Pipeline tests an idiomatic Go fan-in over channels and exposes a real
// close-race: two producers share a "last one closes the channel" counter
// implemented with a non-atomic load/store pair. Under racing interleavings
// either nobody closes (the consumer deadlocks) or both do (close of closed
// channel). SURW finds a failing schedule, and the recording is minimized
// down to the few context switches that matter.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"surw"
)

func pipeline(t *surw.Thread) {
	results := surw.NewChan[int](t, "results", 2)
	done := t.NewVar("done", 0)

	producer := func(id int) func(*surw.Thread) {
		return func(w *surw.Thread) {
			results.Send(w, id)
			// Bug: the "last one closes" idiom implemented with separate
			// load and store instead of an atomic decrement-and-test.
			n := done.Load(w)
			done.Store(w, n+1)
			if n+1 == 2 { // believes it is the last producer
				results.Close(w)
			}
		}
	}
	p1 := t.Go(producer(1))
	p2 := t.Go(producer(2))

	sum := 0
	for {
		v, ok := results.Recv(t)
		if !ok {
			break
		}
		sum += v
	}
	t.Join(p1)
	t.Join(p2)
	t.Assert(sum == 3, "lost-result")
}

func main() {
	opts := surw.Options{Base: surw.Base{Seed: 2}, Schedules: 3000}
	report, err := surw.Test(pipeline, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	if !report.Found() {
		return
	}

	// Record the failure with the replay seed, then minimize the schedule.
	res, rec := surw.RecordRun(pipeline, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: report.Seed}})
	if !res.Buggy() {
		// The failing seed was found under SURW; hunt again with RW for a
		// recordable repro.
		for s := int64(0); s < 20000; s++ {
			res, rec = surw.RecordRun(pipeline, surw.NewRandomWalk(), surw.RunOptions{Base: surw.Base{Seed: s}})
			if res.Buggy() {
				break
			}
		}
	}
	if !res.Buggy() {
		fmt.Println("no RW repro found for minimization demo")
		return
	}
	fmt.Printf("recorded failure: %v\n", res.Failure)
	min, replays := surw.MinimizeRecording(pipeline, rec, res.BugID(), surw.RunOptions{}, 5000)
	fmt.Printf("minimized after %d replays: %s\n", replays, min)
	final := surw.ReplayRecording(pipeline, min, surw.RunOptions{RecordTrace: true})
	fmt.Printf("minimal failing interleaving (%d events):\n", len(final.Trace))
	for _, ev := range final.Trace {
		fmt.Printf("  %v\n", ev)
	}
}
