// Ftpexplore is a miniature version of the paper's LightFTP case study
// built purely on the public API: client threads race MKD/RMD-style
// mutations on a shared in-memory directory set, with realistic
// per-command socket/parse work around each filesystem access. We compare
// how evenly different scheduling algorithms explore the orderings of the
// filesystem mutations and the final directory states. Higher entropy and
// more distinct behaviours mean better behavioural exploration.
//
//	go run ./examples/ftpexplore
package main

import (
	"fmt"
	"sort"
	"strings"

	"surw"
)

const (
	clients = 3
	dirs    = 2
	noise   = 6 // socket/parse events per command
)

// server builds the workload: each client creates its own directories and
// deletes its neighbour's, FTP-style; the behaviour is the surviving set.
func server(t *surw.Thread) {
	fs := surw.NewRef(t, "fs", map[string]bool{})
	name := func(c, d int) string { return fmt.Sprintf("c%dd%d", c, d) }

	hs := make([]*surw.Handle, clients)
	for c := 0; c < clients; c++ {
		c := c
		sock := t.NewVar(fmt.Sprintf("sock%d", c), 0)
		hs[c] = t.Go(func(w *surw.Thread) {
			recv := func() {
				for i := 0; i < noise; i++ {
					sock.Add(w, 1)
				}
			}
			for d := 0; d < dirs; d++ {
				// MKD: check-then-create (the server's TOCTOU shape).
				recv()
				own := name(c, d)
				if m := fs.Get(w); !m[own] {
					fs.Update(w, func(m map[string]bool) map[string]bool {
						m[own] = true
						return m
					})
				}
				// RMD of the neighbour's directory, if it exists yet.
				recv()
				victim := name((c+1)%clients, d)
				if m := fs.Get(w); m[victim] {
					fs.Update(w, func(m map[string]bool) map[string]bool {
						delete(m, victim)
						return m
					})
				}
			}
		})
	}
	t.JoinAll(hs...)

	var names []string
	for n := range fs.Peek() {
		names = append(names, n)
	}
	sort.Strings(names)
	t.SetBehavior(strings.Join(names, ","))
}

// fsMutations keeps only the filesystem writes in the interleaving
// fingerprint — the case study's unit of interleaving coverage.
func fsMutations(ev surw.Event) bool {
	return ev.Kind.IsWrite() && ev.ObjHash == surw.HashName("fs")
}

func main() {
	const schedules = 4000
	fmt.Printf("%-8s %14s %14s %10s %10s\n",
		"alg", "interleavings", "behaviors", "ilv H", "beh H")
	for _, alg := range []string{"SURW", "RW", "PCT-3", "POS"} {
		ex, err := surw.Explore(server, surw.Options{Base: surw.Base{Seed: 5}, Schedules: schedules, Algorithm: alg, TraceFilter: fsMutations})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %14d %14d %10.2f %10.2f\n",
			alg, len(ex.Interleavings), len(ex.Behaviors),
			ex.InterleavingEntropy(), ex.BehaviorEntropy())
	}
	fmt.Println("\nlarger = more diverse and more even exploration (cf. paper Table 3)")
}
