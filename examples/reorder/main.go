// Reorder reproduces the paper's Figure 4 / §4.2 analysis: the
// reorder_<N> family spawns N-1 setter threads (a = 1; b = -1) and one
// checker that crashes iff it observes the torn state a == 1 && b == 0.
// One context switch suffices to trigger the bug, but no setter may
// complete before the check — so baselines degrade exponentially with N
// while SURW stays flat (it can commit the checker's b-access to go first,
// before the checker is even enabled).
//
//	go run ./examples/reorder
package main

import (
	"fmt"

	"surw"
)

func reorder(setters int) func(*surw.Thread) {
	return func(t *surw.Thread) {
		a := t.NewVar("a", 0)
		b := t.NewVar("b", 0)
		// Thread creation costs the main thread a couple of events, as the
		// instrumented pthread_create path does in the paper's runtime —
		// early setters run while later ones are still being created, which
		// is what makes scheduling the checker first so hard.
		ctl := t.NewVar("ctl", 0)
		hs := make([]*surw.Handle, 0, setters+1)
		for i := 0; i < setters; i++ {
			hs = append(hs, t.Go(func(w *surw.Thread) {
				a.Store(w, 1)
				b.Store(w, -1)
			}))
			ctl.Add(t, 1)
			ctl.Add(t, 1)
		}
		hs = append(hs, t.Go(func(w *surw.Thread) {
			av := a.Load(w)
			bv := b.Load(w)
			ok := (av == 0 && bv == 0) || (av == 1 && bv == -1) || (av == 0 && bv == -1)
			w.Assert(ok, "reorder")
		}))
		t.JoinAll(hs...)
	}
}

func main() {
	const budget = 20_000
	fmt.Printf("%-8s", "N")
	algs := []string{"SURW", "POS", "RW", "PCT-3"}
	for _, alg := range algs {
		fmt.Printf("%10s", alg)
	}
	fmt.Println("   (schedules to first bug; - = not in budget)")

	for _, setters := range []int{2, 4, 9, 19} {
		fmt.Printf("%-8s", fmt.Sprintf("%d", setters+1))
		for _, alg := range algs {
			rep, err := surw.Test(reorder(setters), surw.Options{Base: surw.Base{Seed: 11}, Schedules: budget, Algorithm: alg})
			if err != nil {
				panic(err)
			}
			if rep.Found() {
				fmt.Printf("%10d", rep.Schedule)
			} else {
				fmt.Printf("%10s", "-")
			}
		}
		fmt.Println()
	}
}
