// Workerpool runs REAL Go code — a worker pool written against the
// standard library — under the controlled scheduler. The stdlib package
// lives in ./pool; ./ported is the same package mechanically rewritten
// onto surw/surwsync by cmd/surwport:
//
//	go run ./cmd/surwport -src examples/workerpool/pool -dst examples/workerpool/ported
//
// The pool seeds a classic lost wakeup: Close wakes parked workers with a
// single token instead of a broadcast, so when two workers are parked at
// shutdown one stays parked forever. Stress-running the stdlib package
// almost never catches it; SURW over the ported package finds it as a
// replayable deadlock in a handful of schedules.
//
//	go run ./examples/workerpool
package main

import (
	"fmt"
	"log"

	"surw"
	pool "surw/examples/workerpool/ported"
	"surw/surwsync"
)

// scenario submits two jobs to a two-worker pool, collects the results,
// and shuts the pool down. surwsync.Program adapts it from plain func()
// to the scheduler's entry signature by binding the root goroutine.
var scenario = surwsync.Program(func() {
	p := pool.New(2)
	results := surwsync.NewChan[int](2)
	for i := 1; i <= 2; i++ {
		v := i
		p.Submit(func() { results.Send(v) })
	}
	got := pool.Collect(results, 2)
	if got[0]+got[1] != 3 {
		panic("worker pool lost a job result")
	}
	p.Close() // lost wakeup: deadlocks when both workers are parked
})

func main() {
	report, err := surw.Test(scenario, surw.Options{Base: surw.Base{Seed: 1}, Schedules: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	if !report.Found() {
		return
	}

	// The failure replays from the report alone: same seed, same schedule.
	res, err := surw.Replay(scenario, report, surw.Options{Base: surw.Base{Seed: 1}, Schedules: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed: %v\n", res.Failure)
	fmt.Printf("failing interleaving (%d events):\n", len(res.Trace))
	for _, ev := range res.Trace {
		fmt.Printf("  %v\n", ev)
	}
}
