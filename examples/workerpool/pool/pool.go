// Package pool is a realistic fixed-size worker pool written against the
// standard library — sync.Mutex, sync.WaitGroup, go statements, and a
// channel used as a wakeup token. It is the "real Go code" half of the
// surwport demonstration: cmd/surwport rewrites it mechanically onto
// surw/surwsync (the committed output is ../ported), after which the same
// logic runs under the controlled scheduler.
//
// The pool carries one seeded bug, marked BUG below: Close wakes parked
// workers with a single token instead of a broadcast, a lost wakeup that
// deadlocks the shutdown only under schedules where at least two workers
// are parked when Close fires. The surw campaign over the ported package
// finds it as a replayable deadlock; stress-running this package rarely
// does.
package pool

import "sync"

// Pool runs submitted jobs on a fixed set of worker goroutines.
type Pool struct {
	mu     sync.Mutex
	queue  []func()
	closed bool
	// wake carries a single pending-work token: Submit tops it up,
	// idle workers drain it. Capacity 1 — a dropped send just means a
	// token is already pending.
	wake chan struct{}
	wg   sync.WaitGroup
}

// New starts a pool of the given number of workers.
func New(workers int) *Pool {
	p := &Pool{wake: make(chan struct{}, 1)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
			<-p.wake // park until there is (maybe) work
			p.mu.Lock()
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		job()
	}
}

// Submit enqueues a job. Submitting to a closed pool is a no-op.
func (p *Pool) Submit(job func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.queue = append(p.queue, job)
	p.mu.Unlock()
	p.signal()
}

// signal tops up the wakeup token without blocking.
func (p *Pool) signal() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Backlog returns the number of queued jobs.
func (p *Pool) Backlog() int {
	p.mu.Lock()
	n := len(p.queue)
	p.mu.Unlock()
	return n
}

// Close marks the pool closed, wakes the workers, and waits for them to
// exit.
//
// BUG (seeded): the wakeup is a single token, but several workers may be
// parked on it; one wakes, sees closed, and exits without passing the
// token on, leaving the rest parked forever — a lost wakeup. The fix
// would be close(p.wake) (a broadcast). The bug fires only under
// schedules where >= 2 workers are parked in <-p.wake when Close runs.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.signal()
	p.wg.Wait()
}

// Collect drains n values from a results channel into a slice; jobs
// typically send their results on such a channel.
func Collect(results chan int, n int) []int {
	out := make([]int, 0, n)
	for v := range results {
		out = append(out, v)
		if len(out) == n {
			break
		}
	}
	return out
}
