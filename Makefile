GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that spawn goroutines: the worker
# pool, the cooperative scheduler, the parallel session runner, and the
# parallel experiment grids.
race:
	$(GO) test -race -short ./internal/workpool ./internal/sched ./internal/runner ./internal/experiments

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: vet build test race
