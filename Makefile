GO ?= go
FUZZTIME ?= 30s

# Version stamp: release binaries report `git describe` through
# surw/internal/buildinfo (every command's -version flag and the
# dashboard's /buildinfo endpoint); builds outside a git checkout fall back
# to "dev".
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -ldflags "-X surw/internal/buildinfo.Version=$(VERSION)"

.PHONY: all build vet test race bench fuzz-smoke crosscheck ci

all: ci

build:
	$(GO) build $(LDFLAGS) ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that spawn goroutines: the worker
# pool, the cooperative scheduler, the parallel session runner, and the
# parallel experiment grids.
race:
	$(GO) test -race -short ./internal/workpool ./internal/sched ./internal/runner ./internal/experiments ./internal/campaign ./internal/remote

# Benchmarks. The throughput-critical pair (pooled scheduling and parallel
# sessions) is additionally parsed into BENCH_obs.json so regressions can be
# gated on and reports can embed machine-readable numbers; every run also
# appends a timestamped record to the BENCH_history.jsonl trajectory
# (BENCH_obs.json stays the latest snapshot). `surwobs -bench-compare
# old.json new.json` gates schedules/s between any two snapshots.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ . | tee BENCH_obs.txt
	$(GO) run ./cmd/surwobs -bench2json -in BENCH_obs.txt -out BENCH_obs.json \
		-bench-history BENCH_history.jsonl \
		-gate 'BenchmarkPooledSchedule/pooled.allocs/op<=11'

# Short coverage-guided fuzz runs of the native fuzz targets: the
# end-to-end differential oracle over generated programs, the commutation
# metamorphic property of the class fingerprint, and the channel
# implementation under randomized scheduling. FUZZTIME=5m for a soak.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzGeneratedProgram -fuzztime=$(FUZZTIME) ./internal/crosscheck
	$(GO) test -run='^$$' -fuzz=FuzzClassFingerprint -fuzztime=$(FUZZTIME) ./internal/crosscheck
	$(GO) test -run='^$$' -fuzz=FuzzChannelOps -fuzztime=$(FUZZTIME) ./internal/sched

# Framework self-verification soak (surwrun -crosscheck).
crosscheck:
	$(GO) run ./cmd/surwrun -crosscheck

ci: vet build test race
